// Reimplementation of TensorFlow's prefetch auto-tuning behaviour — the
// framework-intrinsic mechanism the paper compares against ("TF
// optimized", §V.A) and cites as tensorflow/core/kernels/data/
// prefetch_autotuner.cc [48].
//
// Buffer sizing follows the upstream state machine exactly:
//   kDisabled -> (if started empty) kUpswing: double buffer_limit every
//   time the consumer finds the buffer empty, until a tick passes with no
//   starvation at which point the size freezes (kDownswing in upstream
//   only trims via a separate budget mechanism; the paper's observation
//   is the over-provisioning, which this reproduces).
// Thread allocation mirrors the paper's measurement (Fig. 3): tf.data
// with AUTOTUNE hands the inter-op pool maximum (30 on the testbed's
// 40-core node) to parallel interleave/map, "regardless of whether they
// are needed or not".
#pragma once

#include <cstdint>
#include <string>

#include "dataplane/types.hpp"

namespace prisma::controlplane {

struct TfAutotunerOptions {
  std::size_t initial_buffer = 1;
  std::size_t max_buffer = 512;
  /// Thread-pool size handed to the input pipeline (testbed: 30).
  std::uint32_t thread_pool_size = 30;

  /// Pipeline layer this tuner targets (see AutotunerOptions); empty =
  /// legacy flat routing to the stage's prefetch layer.
  std::string target_object;
};

class TfPrefetchAutotuner {
 public:
  enum class Mode { kDisabled, kUpswing, kDownswing };

  explicit TfPrefetchAutotuner(TfAutotunerOptions options);

  /// Per-element hook, mirroring upstream RecordConsumption(buffer_size):
  /// called with the current number of buffered elements each time the
  /// consumer takes one.
  void RecordConsumption(std::size_t current_buffer_size);

  /// Snapshot-driven adapter so the same Controller can poll it like the
  /// PRISMA tuner. Derives starvation from consumer_waits deltas.
  dataplane::StageKnobs Tick(const dataplane::StageStatsSnapshot& stats);

  std::size_t buffer_limit() const { return buffer_limit_; }
  std::uint32_t threads() const { return options_.thread_pool_size; }
  Mode mode() const { return mode_; }

 private:
  dataplane::StageKnobs TickFlat(const dataplane::StageStatsSnapshot& stats);

  TfAutotunerOptions options_;
  Mode mode_ = Mode::kUpswing;
  std::size_t buffer_limit_;

  bool has_last_ = false;
  dataplane::StageStatsSnapshot last_;
};

}  // namespace prisma::controlplane
