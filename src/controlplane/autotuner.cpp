#include "controlplane/autotuner.hpp"

#include <algorithm>

namespace prisma::controlplane {

PrismaAutotuner::PrismaAutotuner(AutotunerOptions options)
    : options_(options),
      producers_(options.min_producers),
      buffer_(std::max(options.min_buffer,
                       options.min_producers * options.buffer_headroom)) {}

void PrismaAutotuner::Reset() {
  const AutotunerOptions options = options_;
  *this = PrismaAutotuner(options);
}

std::size_t PrismaAutotuner::TargetBuffer() const {
  std::size_t target = producers_ * options_.buffer_headroom;
  for (std::size_t i = 0; i < burst_doublings_; ++i) target *= 2;
  return std::clamp<std::size_t>(target, options_.min_buffer,
                                 options_.max_buffer);
}

dataplane::StageKnobs PrismaAutotuner::Tick(
    const dataplane::StageStatsSnapshot& stats) {
  if (!options_.target_object.empty()) {
    // Layer targeting: read the named section's view of the stats, run
    // the unchanged algorithm on it, and scope the resulting knobs back
    // to that layer.
    return dataplane::ScopeKnobs(
        TickFlat(dataplane::SnapshotForObject(stats, options_.target_object)),
        options_.target_object);
  }
  return TickFlat(stats);
}

dataplane::StageKnobs PrismaAutotuner::TickFlat(
    const dataplane::StageStatsSnapshot& stats) {
  dataplane::StageKnobs knobs;
  if (!has_last_) {
    has_last_ = true;
    last_ = stats;
    // Publish the initial configuration so stage and tuner agree.
    knobs.producers = producers_;
    knobs.buffer_capacity = buffer_;
    return knobs;
  }

  const auto d_takes = stats.samples_consumed - last_.samples_consumed;
  const auto d_waits = stats.consumer_waits - last_.consumer_waits;
  const auto d_inserts = stats.samples_produced - last_.samples_produced;
  const auto d_blocks = stats.producer_blocks - last_.producer_blocks;
  last_ = stats;

  if (d_takes == 0 && d_inserts == 0) {
    // Idle tick (between epochs / before training starts): no signal.
    return knobs;
  }

  meas_inserts_ += d_inserts;
  meas_takes_ += d_takes;
  meas_waits_ += d_waits;
  meas_blocks_ += d_blocks;
  meas_queue_depth_ = stats.queue_depth;
  ++meas_ticks_;

  if (meas_inserts_ < options_.period_min_inserts &&
      meas_ticks_ < options_.period_max_ticks) {
    return knobs;  // period still open
  }
  return ClosePeriod();
}

dataplane::StageKnobs PrismaAutotuner::ClosePeriod() {
  dataplane::StageKnobs knobs;

  const double rate =
      static_cast<double>(meas_inserts_) / static_cast<double>(meas_ticks_);
  const double starvation =
      meas_takes_ > 0 ? static_cast<double>(meas_waits_) /
                            static_cast<double>(meas_takes_)
                      : 0.0;
  const double blocked =
      meas_inserts_ > 0 ? static_cast<double>(meas_blocks_) /
                              static_cast<double>(meas_inserts_)
                        : 1.0;
  const bool work_remains = meas_queue_depth_ > 0;
  const bool starving =
      starvation > options_.starvation_threshold && work_remains;

  meas_inserts_ = meas_takes_ = meas_waits_ = meas_blocks_ = 0;
  meas_ticks_ = 0;

  const std::uint32_t old_producers = producers_;
  const std::size_t old_buffer = buffer_;

  if (frozen_periods_left_ > 0) --frozen_periods_left_;

  if (probing_) {
    probing_ = false;
    const bool gained =
        rate >= base_rate_ * (1.0 + options_.rate_gain_threshold);
    if (!gained) {
      // Plateau: the device is saturated — retire the probe thread and
      // freeze scale-up; repeated failures at the same count escalate
      // the freeze exponentially. If consumers still starve here they
      // are bursty rather than under-supplied: deepen the buffer.
      producers_ = std::max(options_.min_producers, producers_ - 1);
      if (producers_ == last_failed_probe_t_) {
        ++consecutive_failed_probes_;
      } else {
        consecutive_failed_probes_ = 1;
        last_failed_probe_t_ = producers_;
      }
      std::uint64_t freeze = options_.freeze_periods;
      for (std::uint32_t i = 1; i < consecutive_failed_probes_; ++i) {
        freeze = std::min<std::uint64_t>(freeze * 2,
                                         options_.max_freeze_periods);
      }
      frozen_periods_left_ = static_cast<std::uint32_t>(freeze);
      if (starving && TargetBuffer() < options_.max_buffer) {
        ++burst_doublings_;
      }
      buffer_ = TargetBuffer();
    } else {
      consecutive_failed_probes_ = 0;
    }
  }

  if (starving && !probing_ && frozen_periods_left_ == 0 &&
      producers_ == old_producers) {  // don't re-raise in a revert period
    calm_periods_ = 0;
    if (producers_ < options_.max_producers) {
      base_rate_ = rate;
      ++producers_;
      probing_ = true;
      buffer_ = std::max(buffer_, TargetBuffer());
    } else if (TargetBuffer() < options_.max_buffer) {
      ++burst_doublings_;
      buffer_ = TargetBuffer();
      frozen_periods_left_ = options_.freeze_periods;
    }
  } else if (!starving && starvation == 0.0 &&
             blocked > options_.overprovision_threshold &&
             producers_ > options_.min_producers && !probing_) {
    if (++calm_periods_ >= options_.cooldown_periods) {
      calm_periods_ = 0;
      --producers_;
      buffer_ = TargetBuffer();
    }
  } else if (!starving) {
    calm_periods_ = 0;
  }

  if (producers_ != old_producers) knobs.producers = producers_;
  if (buffer_ != old_buffer) knobs.buffer_capacity = buffer_;
  stable_periods_ =
      (knobs.producers || knobs.buffer_capacity) ? 0 : stable_periods_ + 1;
  return knobs;
}

}  // namespace prisma::controlplane
