#include "controlplane/controller.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace prisma::controlplane {

Controller::Controller(std::string name, ControllerOptions options,
                       PolicyFactory policy_factory,
                       std::shared_ptr<const Clock> clock)
    : name_(std::move(name)),
      options_(options),
      policy_factory_(std::move(policy_factory)),
      clock_(std::move(clock)) {}

Controller::~Controller() { Stop(); }

Status Controller::Attach(std::shared_ptr<dataplane::Stage> stage) {
  MutexLock lock(mu_);
  while (tick_in_progress_) tick_done_.Wait(mu_);
  const std::string& id = stage->info().id;
  const auto dup = std::find_if(managed_.begin(), managed_.end(),
                                [&](const Managed& m) {
                                  return m.stage->info().id == id;
                                });
  if (dup != managed_.end()) {
    return Status::AlreadyExists("stage already attached: " + id);
  }
  Managed m;
  m.stage = std::move(stage);
  m.policy = policy_factory_();
  managed_.push_back(std::move(m));
  return Status::Ok();
}

Status Controller::Detach(const std::string& stage_id) {
  MutexLock lock(mu_);
  while (tick_in_progress_) tick_done_.Wait(mu_);
  const auto it = std::find_if(managed_.begin(), managed_.end(),
                               [&](const Managed& m) {
                                 return m.stage->info().id == stage_id;
                               });
  if (it == managed_.end()) {
    return Status::NotFound("stage not attached: " + stage_id);
  }
  managed_.erase(it);
  return Status::Ok();
}

void Controller::TickOnce() NO_THREAD_SAFETY_ANALYSIS {
  // The tick runs with mu_ released: CollectStats may RPC to a remote
  // stage and ApplyKnobs may join producer threads, and neither may run
  // under a lock. tick_in_progress_ keeps managed_ frozen meanwhile
  // (Attach/Detach wait on tick_done_), so the Managed elements the
  // proposals point into cannot move; TSA cannot express that hand-off,
  // hence the disabled analysis.
  MutexLock lock(mu_);
  while (tick_in_progress_) tick_done_.Wait(mu_);
  tick_in_progress_ = true;
  lock.Unlock();

  // Phase 1: collect metrics and run every stage's own policy.
  struct Proposal {
    Managed* managed;
    dataplane::StageStatsSnapshot stats;
    dataplane::StageKnobs knobs;
    double starvation = 0.0;
  };
  std::vector<Proposal> proposals;
  proposals.reserve(managed_.size());
  for (auto& m : managed_) {
    Proposal p;
    p.managed = &m;
    p.stats = m.stage->CollectStats();
    p.knobs = m.policy->Tick(p.stats);
    if (m.has_last) {
      const auto d_takes = p.stats.samples_consumed - m.last_stats.samples_consumed;
      const auto d_waits = p.stats.consumer_waits - m.last_stats.consumer_waits;
      p.starvation = d_takes > 0 ? static_cast<double>(d_waits) /
                                       static_cast<double>(d_takes)
                                 : 0.0;
    }
    m.last_stats = p.stats;
    m.has_last = true;
    proposals.push_back(std::move(p));
  }

  // Phase 2 (optional): coordinate producer shares against the global
  // budget — this is what framework-intrinsic optimizations cannot do
  // (paper §II "partial visibility").
  if (options_.global_producer_budget > 0 && !proposals.empty()) {
    std::vector<StageDemand> demands;
    demands.reserve(proposals.size());
    for (const auto& p : proposals) {
      StageDemand d;
      d.stage_id = p.managed->stage->info().id;
      d.starvation = p.starvation;
      d.requested = p.knobs.producers.value_or(p.stats.producers);
      d.weight = p.managed->stage->info().weight;
      demands.push_back(std::move(d));
    }
    const auto shares =
        ComputeFairShares(demands, options_.global_producer_budget);
    for (std::size_t i = 0; i < proposals.size(); ++i) {
      proposals[i].knobs.producers = shares[i];
    }
  }

  // Phase 3: enforce, still unlocked.
  std::vector<StageObservation> observations;
  observations.reserve(proposals.size());
  for (auto& p : proposals) {
    if (!p.knobs.Empty()) {
      const Status s = p.managed->stage->ApplyKnobs(p.knobs);
      if (!s.ok()) {
        PRISMA_LOG(kWarn, "controller")
            << name_ << ": ApplyKnobs failed for "
            << p.managed->stage->info().id << ": " << s.ToString();
      }
    }
    observations.push_back(
        StageObservation{p.managed->stage->info().id, p.stats, p.knobs});
  }

  lock.Lock();
  last_observations_ = observations;
  for (auto& obs : observations) history_.push_back(std::move(obs));
  while (history_.size() > options_.history_limit) history_.pop_front();
  tick_in_progress_ = false;
  tick_done_.NotifyAll();
}

Status Controller::RunInBackground() {
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true)) {
    return Status::FailedPrecondition("controller already running");
  }
  {
    MutexLock lock(stop_mu_);
    stop_requested_ = false;
  }
  thread_ = std::thread([this] { Loop(); });
  return Status::Ok();
}

void Controller::Loop() {
  MutexLock lock(stop_mu_);
  while (!stop_requested_) {
    lock.Unlock();
    TickOnce();
    lock.Lock();
    const auto deadline =
        std::chrono::steady_clock::now() + options_.poll_interval;
    while (!stop_requested_) {
      if (!stop_cv_.WaitUntil(stop_mu_, deadline)) break;  // timed out
    }
  }
}

void Controller::Stop() {
  if (!running_.exchange(false)) return;
  {
    MutexLock lock(stop_mu_);
    stop_requested_ = true;
  }
  stop_cv_.NotifyAll();
  if (thread_.joinable()) thread_.join();
}

std::size_t Controller::NumStages() const {
  MutexLock lock(mu_);
  return managed_.size();
}

std::vector<Controller::StageObservation> Controller::LastObservations() const {
  MutexLock lock(mu_);
  return last_observations_;
}

std::vector<Controller::StageObservation> Controller::History() const {
  MutexLock lock(mu_);
  return {history_.begin(), history_.end()};
}

void Controller::ExportMetrics(MetricsRegistry& registry) const {
  MutexLock lock(mu_);
  for (const auto& obs : last_observations_) {
    const std::string labels = MetricsRegistry::Label("stage", obs.stage_id);
    // Report the *effective* knob values: the observation's stats were
    // collected before this round's knobs were pushed.
    registry.GetGauge("prisma_stage_producers", labels)
        .Set(obs.applied.producers.value_or(obs.stats.producers));
    registry.GetGauge("prisma_stage_buffer_occupancy", labels)
        .Set(static_cast<double>(obs.stats.buffer_occupancy));
    registry.GetGauge("prisma_stage_buffer_capacity", labels)
        .Set(static_cast<double>(
            obs.applied.buffer_capacity.value_or(obs.stats.buffer_capacity)));
    registry.GetGauge("prisma_stage_samples_consumed", labels)
        .Set(static_cast<double>(obs.stats.samples_consumed));
    registry.GetGauge("prisma_stage_consumer_waits", labels)
        .Set(static_cast<double>(obs.stats.consumer_waits));
    registry.GetGauge("prisma_stage_queue_depth", labels)
        .Set(static_cast<double>(obs.stats.queue_depth));
    registry.GetGauge("prisma_stage_buffer_shards", labels)
        .Set(static_cast<double>(
            obs.applied.buffer_shards.value_or(obs.stats.buffer_shards)));
    registry.GetGauge("prisma_stage_read_retries", labels)
        .Set(static_cast<double>(obs.stats.read_retries));
    registry.GetGauge("prisma_stage_read_failures", labels)
        .Set(static_cast<double>(obs.stats.read_failures));
    registry.GetGauge("prisma_stage_pool_hits", labels)
        .Set(static_cast<double>(obs.stats.pool_hits));
    registry.GetGauge("prisma_stage_pool_misses", labels)
        .Set(static_cast<double>(obs.stats.pool_misses));
    registry.GetGauge("prisma_stage_pool_cached_bytes", labels)
        .Set(static_cast<double>(obs.stats.pool_cached_bytes));
    // Per-object sections of a stacked pipeline: every layer's gauges,
    // labelled {stage,object} so operators can tell the prefetch buffer
    // from the tiering fast tier at a glance.
    for (const auto& section : obs.stats.objects) {
      const std::string object_labels = MetricsRegistry::Label(
          "stage", obs.stage_id, "object", section.object);
      for (const auto& [key, value] : section.gauges) {
        registry.GetGauge("prisma_object_" + key, object_labels).Set(value);
      }
    }
  }
}

// ---------------------------------------------------------------------------

ControlPlane::ControlPlane(std::size_t num_controllers,
                           ControllerOptions options,
                           PolicyFactory policy_factory,
                           std::shared_ptr<const Clock> clock) {
  const std::size_t n = std::max<std::size_t>(1, num_controllers);
  controllers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    controllers_.push_back(std::make_unique<Controller>(
        "controller-" + std::to_string(i), options, policy_factory, clock));
  }
  alive_.assign(n, true);
}

Status ControlPlane::Attach(std::shared_ptr<dataplane::Stage> stage) {
  MutexLock lock(mu_);
  // Round-robin over live controllers.
  for (std::size_t probe = 0; probe < controllers_.size(); ++probe) {
    const std::size_t i = (next_ + probe) % controllers_.size();
    if (!alive_[i]) continue;
    next_ = i + 1;
    if (Status s = controllers_[i]->Attach(stage); !s.ok()) return s;
    placements_.emplace_back(stage, i);
    return Status::Ok();
  }
  return Status::Unavailable("no live controllers");
}

Status ControlPlane::RunInBackground() {
  MutexLock lock(mu_);
  for (std::size_t i = 0; i < controllers_.size(); ++i) {
    if (!alive_[i]) continue;
    if (Status s = controllers_[i]->RunInBackground(); !s.ok()) return s;
  }
  return Status::Ok();
}

void ControlPlane::Stop() {
  // No mu_: Stop() joins controller loop threads, and FailController
  // (which also calls into a controller under mu_) must not be blocked
  // behind those joins. controllers_ itself is immutable after
  // construction, and Controller::Stop() is idempotent/thread-safe.
  for (auto& c : controllers_) c->Stop();
}

void ControlPlane::TickOnce() {
  // Snapshot the live set, then tick with mu_ released: a tick does
  // stage I/O, and controllers_ itself is immutable after construction.
  std::vector<Controller*> live;
  {
    MutexLock lock(mu_);
    live.reserve(controllers_.size());
    for (std::size_t i = 0; i < controllers_.size(); ++i) {
      if (alive_[i]) live.push_back(controllers_[i].get());
    }
  }
  for (Controller* c : live) c->TickOnce();
}

Status ControlPlane::FailController(std::size_t index) {
  Controller* failed = nullptr;
  {
    MutexLock lock(mu_);
    if (index >= controllers_.size()) {
      return Status::InvalidArgument("no such controller");
    }
    if (!alive_[index]) return Status::FailedPrecondition("already failed");
    std::size_t live = 0;
    for (const bool a : alive_) live += a ? 1 : 0;
    if (live <= 1) {
      return Status::InvalidArgument("cannot fail the last live controller");
    }

    alive_[index] = false;
    failed = controllers_[index].get();

    // Reassign this controller's stages to the survivors (failover).
    for (auto& [stage, owner] : placements_) {
      if (owner != index) continue;
      PRISMA_IGNORE_STATUS(failed->Detach(stage->info().id),
                           "controller already declared failed; best-effort");
      for (std::size_t probe = 0; probe < controllers_.size(); ++probe) {
        const std::size_t i = (next_ + probe) % controllers_.size();
        if (!alive_[i]) continue;
        next_ = i + 1;
        if (controllers_[i]->Attach(stage).ok()) {
          owner = i;
          break;
        }
      }
    }
  }
  // Join the failed controller's polling loop with mu_ released: Stop()
  // blocks on a thread join, and a concurrent tick must not wedge the
  // whole control plane behind it. The loop may run one final tick
  // against its already-detached stage set, which is harmless.
  failed->Stop();
  return Status::Ok();
}

}  // namespace prisma::controlplane
