// The control-plane controller (paper §III): logically centralized,
// physically distributable. A Controller owns a set of stages, polls
// their monitoring metrics on a fixed cadence, runs each stage's policy,
// and pushes resulting knobs back. ControlPlane shards stages across
// several controllers for scalability/availability (§VII).
//
// A Controller can run in two modes:
//   * background thread (live deployments / examples): RunInBackground();
//   * manual ticks (unit tests, DES benches): TickOnce() driven by the
//     caller's clock.
#pragma once

#include <atomic>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.hpp"
#include "common/metrics.hpp"
#include "common/mutex.hpp"
#include "controlplane/policy.hpp"
#include "dataplane/stage.hpp"

namespace prisma::controlplane {

/// Creates a fresh policy instance for a newly attached stage.
using PolicyFactory = std::function<std::unique_ptr<Policy>()>;

struct ControllerOptions {
  Millis poll_interval{100};
  /// When > 0, producer threads across *all* attached stages are capped
  /// at this budget via ComputeFairShares (multi-tenant coordination).
  std::uint32_t global_producer_budget = 0;
  /// Observations retained per controller for History() (ring buffer).
  std::size_t history_limit = 256;
};

class Controller {
 public:
  Controller(std::string name, ControllerOptions options,
             PolicyFactory policy_factory,
             std::shared_ptr<const Clock> clock);
  ~Controller();

  Controller(const Controller&) = delete;
  Controller& operator=(const Controller&) = delete;

  /// Attaches a stage; a fresh policy is created for it.
  Status Attach(std::shared_ptr<dataplane::Stage> stage) EXCLUDES(mu_);
  Status Detach(const std::string& stage_id) EXCLUDES(mu_);

  /// One control round: collect -> decide -> (coordinate) -> enforce.
  void TickOnce() EXCLUDES(mu_);

  /// Starts the polling thread.
  Status RunInBackground();
  /// Stops and joins the polling thread (idempotent).
  void Stop();

  std::size_t NumStages() const EXCLUDES(mu_);
  const std::string& name() const { return name_; }

  /// Most recent stats per stage (for observability/tests).
  struct StageObservation {
    std::string stage_id;
    dataplane::StageStatsSnapshot stats;
    dataplane::StageKnobs applied;
  };
  std::vector<StageObservation> LastObservations() const EXCLUDES(mu_);

  /// Rolling window of recent observations (oldest first), capped at
  /// options.history_limit — the control plane's monitoring record.
  std::vector<StageObservation> History() const EXCLUDES(mu_);

  /// Publishes the latest per-stage observations as gauges:
  ///   prisma_stage_producers{stage="id"}, prisma_stage_buffer_occupancy,
  ///   prisma_stage_buffer_capacity, prisma_stage_samples_consumed,
  ///   prisma_stage_consumer_waits, prisma_stage_queue_depth,
  /// plus one prisma_object_<gauge>{stage="id",object="name"} gauge per
  /// entry of each pipeline layer's stats section.
  void ExportMetrics(MetricsRegistry& registry) const EXCLUDES(mu_);

 private:
  struct Managed {
    std::shared_ptr<dataplane::Stage> stage;
    std::unique_ptr<Policy> policy;
    dataplane::StageStatsSnapshot last_stats;
    bool has_last = false;
  };

  void Loop();

  std::string name_;           // prisma-lint: unguarded(immutable after construction)
  ControllerOptions options_;  // prisma-lint: unguarded(immutable after construction)
  // prisma-lint: unguarded(set in the constructor, invoked only from Attach which holds mu_)
  PolicyFactory policy_factory_;
  std::shared_ptr<const Clock> clock_;

  mutable Mutex mu_{LockRank::kController};
  std::vector<Managed> managed_ GUARDED_BY(mu_);
  std::vector<StageObservation> last_observations_ GUARDED_BY(mu_);
  std::deque<StageObservation> history_ GUARDED_BY(mu_);
  // Set for the duration of one tick. TickOnce releases mu_ while it
  // talks to stages (CollectStats may RPC, ApplyKnobs may join producer
  // threads — neither may run under a lock); Attach/Detach wait on
  // tick_done_ instead of racing, so managed_ stays frozen while the
  // tick runs unlocked.
  bool tick_in_progress_ GUARDED_BY(mu_) = false;
  CondVar tick_done_;

  // prisma-lint: unguarded(written only after the running_ CAS hand-off in RunInBackground/Stop)
  std::thread thread_;
  Mutex stop_mu_{LockRank::kController};  // never nested with mu_
  CondVar stop_cv_;
  bool stop_requested_ GUARDED_BY(stop_mu_) = false;
  std::atomic<bool> running_{false};
};

/// A logically centralized control plane made of multiple controllers.
/// Stages are sharded round-robin; the shard map survives controller
/// failures by reassigning a failed controller's stages to the survivors.
class ControlPlane {
 public:
  ControlPlane(std::size_t num_controllers, ControllerOptions options,
               PolicyFactory policy_factory,
               std::shared_ptr<const Clock> clock);

  Status Attach(std::shared_ptr<dataplane::Stage> stage) EXCLUDES(mu_);

  Status RunInBackground() EXCLUDES(mu_);
  void Stop();
  void TickOnce() EXCLUDES(mu_);

  /// Simulates a controller crash: its stages move to the survivors.
  /// InvalidArgument when index is out of range or it is the last one.
  Status FailController(std::size_t index) EXCLUDES(mu_);

  std::size_t NumControllers() const { return controllers_.size(); }
  Controller& controller(std::size_t i) { return *controllers_[i]; }

 private:
  // Sized in the constructor and never resized afterwards; only the
  // pointed-to Controllers are mutable.
  // prisma-lint: unguarded(immutable after construction; Stop reads it without mu_ by design)
  std::vector<std::unique_ptr<Controller>> controllers_;
  // mu_ also orders calls into the controllers: ControlPlane::mu_ is
  // constructed before any Controller's mutexes (the controllers are
  // created in the constructor body), so the same-rank kController
  // nesting in Attach/TickOnce/FailController is in construction order.
  mutable Mutex mu_{LockRank::kController};
  std::vector<bool> alive_ GUARDED_BY(mu_);
  // Stage -> controller assignment so failover can reassign.
  std::vector<std::pair<std::shared_ptr<dataplane::Stage>, std::size_t>>
      placements_ GUARDED_BY(mu_);
  std::size_t next_ GUARDED_BY(mu_) = 0;
};

}  // namespace prisma::controlplane
