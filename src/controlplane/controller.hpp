// The control-plane controller (paper §III): logically centralized,
// physically distributable. A Controller owns a set of stages, polls
// their monitoring metrics on a fixed cadence, runs each stage's policy,
// and pushes resulting knobs back. ControlPlane shards stages across
// several controllers for scalability/availability (§VII).
//
// A Controller can run in two modes:
//   * background thread (live deployments / examples): RunInBackground();
//   * manual ticks (unit tests, DES benches): TickOnce() driven by the
//     caller's clock.
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.hpp"
#include "common/metrics.hpp"
#include "controlplane/policy.hpp"
#include "dataplane/stage.hpp"

namespace prisma::controlplane {

/// Creates a fresh policy instance for a newly attached stage.
using PolicyFactory = std::function<std::unique_ptr<Policy>()>;

struct ControllerOptions {
  Millis poll_interval{100};
  /// When > 0, producer threads across *all* attached stages are capped
  /// at this budget via ComputeFairShares (multi-tenant coordination).
  std::uint32_t global_producer_budget = 0;
  /// Observations retained per controller for History() (ring buffer).
  std::size_t history_limit = 256;
};

class Controller {
 public:
  Controller(std::string name, ControllerOptions options,
             PolicyFactory policy_factory,
             std::shared_ptr<const Clock> clock);
  ~Controller();

  Controller(const Controller&) = delete;
  Controller& operator=(const Controller&) = delete;

  /// Attaches a stage; a fresh policy is created for it.
  Status Attach(std::shared_ptr<dataplane::Stage> stage);
  Status Detach(const std::string& stage_id);

  /// One control round: collect -> decide -> (coordinate) -> enforce.
  void TickOnce();

  /// Starts the polling thread.
  Status RunInBackground();
  /// Stops and joins the polling thread (idempotent).
  void Stop();

  std::size_t NumStages() const;
  const std::string& name() const { return name_; }

  /// Most recent stats per stage (for observability/tests).
  struct StageObservation {
    std::string stage_id;
    dataplane::StageStatsSnapshot stats;
    dataplane::StageKnobs applied;
  };
  std::vector<StageObservation> LastObservations() const;

  /// Rolling window of recent observations (oldest first), capped at
  /// options.history_limit — the control plane's monitoring record.
  std::vector<StageObservation> History() const;

  /// Publishes the latest per-stage observations as gauges:
  ///   prisma_stage_producers{stage="id"}, prisma_stage_buffer_occupancy,
  ///   prisma_stage_buffer_capacity, prisma_stage_samples_consumed,
  ///   prisma_stage_consumer_waits, prisma_stage_queue_depth.
  void ExportMetrics(MetricsRegistry& registry) const;

 private:
  struct Managed {
    std::shared_ptr<dataplane::Stage> stage;
    std::unique_ptr<Policy> policy;
    dataplane::StageStatsSnapshot last_stats;
    bool has_last = false;
  };

  void Loop();

  std::string name_;
  ControllerOptions options_;
  PolicyFactory policy_factory_;
  std::shared_ptr<const Clock> clock_;

  mutable std::mutex mu_;
  std::vector<Managed> managed_;
  std::vector<StageObservation> last_observations_;
  std::deque<StageObservation> history_;

  std::thread thread_;
  std::mutex stop_mu_;
  std::condition_variable stop_cv_;
  bool stop_requested_ = false;
  std::atomic<bool> running_{false};
};

/// A logically centralized control plane made of multiple controllers.
/// Stages are sharded round-robin; the shard map survives controller
/// failures by reassigning a failed controller's stages to the survivors.
class ControlPlane {
 public:
  ControlPlane(std::size_t num_controllers, ControllerOptions options,
               PolicyFactory policy_factory,
               std::shared_ptr<const Clock> clock);

  Status Attach(std::shared_ptr<dataplane::Stage> stage);

  Status RunInBackground();
  void Stop();
  void TickOnce();

  /// Simulates a controller crash: its stages move to the survivors.
  /// InvalidArgument when index is out of range or it is the last one.
  Status FailController(std::size_t index);

  std::size_t NumControllers() const { return controllers_.size(); }
  Controller& controller(std::size_t i) { return *controllers_[i]; }

 private:
  std::vector<std::unique_ptr<Controller>> controllers_;
  std::vector<bool> alive_;
  // Stage -> controller assignment so failover can reassign.
  std::mutex mu_;
  std::vector<std::pair<std::shared_ptr<dataplane::Stage>, std::size_t>> placements_;
  std::size_t next_ = 0;
};

}  // namespace prisma::controlplane
