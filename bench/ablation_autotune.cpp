// Ablation A1 — is the feedback auto-tuner worth it?
//
// Compares PRISMA's auto-tuned (t, N) against a grid of manually pinned
// configurations on the LeNet workload (the regime where the knobs
// matter). The claim under test (paper §IV/§V): the control loop finds a
// configuration within a few percent of the best hand-tuned point while
// allocating only the threads the device can actually use — so users
// skip the "exhaustive and time-consuming preliminary experiments".
#include <cstdio>
#include <vector>

#include "bench_util.hpp"

using namespace prisma;
using namespace prisma::bench;
using namespace prisma::baselines;

int main() {
  const std::size_t scale = BenchScale();
  const int runs = std::min(BenchRuns(), 3);

  PrintHeader("Ablation A1 — auto-tuner vs manually pinned (t, N)");
  std::printf("LeNet, batch 256, ImageNet/%zu, %d runs per cell\n", scale,
              runs);

  ExperimentConfig base;
  base.model = sim::ModelProfile::LeNet();
  base.global_batch = 256;
  base.scale = scale;

  // Auto-tuned reference.
  const Summary autod = RunSeeds(base, runs, RunPrismaTf);
  std::printf("\nauto-tuned: %8.0f s ±%.0f  (converged t=%u, N=%zu)\n",
              autod.mean_s, autod.stddev_s, autod.last.final_producers,
              autod.last.final_buffer);

  // Manual grid.
  const std::vector<std::uint32_t> t_grid = {1, 2, 4, 8, 16};
  const std::vector<std::size_t> n_grid = {8, 64, 512};
  double best = 1e18;
  std::uint32_t best_t = 0;
  std::size_t best_n = 0;

  std::printf("\nfixed grid (full-scale estimate, s):\n%8s", "t \\ N");
  for (const auto n : n_grid) std::printf(" %9zu", n);
  std::printf("\n");
  for (const auto t : t_grid) {
    std::printf("%8u", t);
    for (const auto n : n_grid) {
      ExperimentConfig cfg = base;
      cfg.fixed_producers = t;
      cfg.fixed_buffer = n;
      const Summary s = RunSeeds(cfg, runs, RunPrismaTf);
      std::printf(" %9.0f", s.mean_s);
      if (s.mean_s < best) {
        best = s.mean_s;
        best_t = t;
        best_n = n;
      }
    }
    std::printf("\n");
  }

  PrintRule();
  const double gap_pct = 100.0 * (autod.mean_s - best) / best;
  std::printf(
      "best fixed config: t=%u N=%zu -> %.0f s, found only after sweeping\n"
      "%zu configurations. The auto-tuner lands within %.1f%% of it using\n"
      "t=%u producers (%.1fx fewer threads than the swept optimum) — the\n"
      "paper's 'balanced trade-off between performance and resource usage'\n"
      "(§IV), with no preliminary experiments. Past the device knee the\n"
      "remaining gains shrink fast (diminishing returns along each row).\n",
      best_t, best_n, best, t_grid.size() * n_grid.size(), gap_pct,
      autod.last.final_producers,
      static_cast<double>(best_t) /
          std::max(1u, autod.last.final_producers));
  return 0;
}
