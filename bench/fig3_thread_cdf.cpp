// Figure 3 reproduction: cumulative distribution of the time spent at
// each number of concurrently reading I/O threads, TF-optimized vs
// PRISMA, for LeNet / AlexNet / ResNet-50 (batch 256).
//
// Paper claims reproduced here: PRISMA's feedback auto-tuner uses at most
// ~4 concurrent threads (3 for ResNet-50) while TF-optimized allocates
// its whole 30-thread pool — "2-7x more threads" — at similar storage
// performance.
//
// The CDF is conditioned on >=1 active reader ("time spent by I/O threads
// actively reading data", §V.A); idle time would otherwise dominate the
// compute-bound runs.
#include <cstdio>

#include "bench_util.hpp"
#include "common/histogram.hpp"

using namespace prisma;
using namespace prisma::bench;
using namespace prisma::baselines;

namespace {

/// CDF over active-reader counts, excluding value 0 (idle).
std::vector<CdfPoint> ActiveCdf(const OccupancyTimeline& tl) {
  Nanos active_total{0};
  for (const auto& [value, t] : tl.TimeAtValue()) {
    if (value >= 1) active_total += t;
  }
  std::vector<CdfPoint> out;
  if (active_total.count() == 0) return out;
  double cum = 0.0;
  for (const auto& [value, t] : tl.TimeAtValue()) {
    if (value < 1) continue;
    cum += ToSeconds(t) / ToSeconds(active_total);
    out.push_back({static_cast<double>(value), std::min(cum, 1.0)});
  }
  return out;
}

double ActiveMean(const OccupancyTimeline& tl) {
  double num = 0.0, den = 0.0;
  for (const auto& [value, t] : tl.TimeAtValue()) {
    if (value < 1) continue;
    num += static_cast<double>(value) * ToSeconds(t);
    den += ToSeconds(t);
  }
  return den > 0 ? num / den : 0.0;
}

void PrintCdfColumn(const char* tag, const std::vector<CdfPoint>& cdf) {
  std::printf("  %s  (threads : cumulative %% of active time)\n", tag);
  for (const auto& p : cdf) {
    std::printf("    %4.0f : %6.2f%%\n", p.value, p.cumulative * 100.0);
  }
}

}  // namespace

int main() {
  const std::size_t scale = BenchScale();

  PrintHeader("Figure 3 — CDF of concurrent I/O threads: TF-optimized vs PRISMA");
  std::printf("dataset = ImageNet/%zu, batch 256, 10 epochs\n", scale);

  const std::vector<sim::ModelProfile> models = {
      sim::ModelProfile::LeNet(), sim::ModelProfile::AlexNet(),
      sim::ModelProfile::ResNet50()};

  for (const auto& model : models) {
    ExperimentConfig cfg;
    cfg.model = model;
    cfg.global_batch = 256;
    cfg.scale = scale;
    cfg.seed = 1001;

    const auto opt = RunTfOptimized(cfg);
    const auto prisma = RunPrismaTf(cfg);

    PrintRule();
    std::printf("%s\n", model.name.c_str());
    PrintCdfColumn("TF optimized", ActiveCdf(opt.reader_timeline));
    PrintCdfColumn("PRISMA      ", ActiveCdf(prisma.reader_timeline));

    const auto opt_max = opt.reader_timeline.MaxValue();
    const auto prisma_max = prisma.reader_timeline.MaxValue();
    std::printf(
        "  summary: TF-opt max=%ld mean=%.1f | PRISMA max=%ld mean=%.1f "
        "(auto-tuned t=%u) | ratio %.1fx\n",
        static_cast<long>(opt_max), ActiveMean(opt.reader_timeline),
        static_cast<long>(prisma_max), ActiveMean(prisma.reader_timeline),
        prisma.final_producers,
        prisma_max > 0 ? static_cast<double>(opt_max) /
                             static_cast<double>(prisma_max)
                       : 0.0);
  }

  PrintRule();
  std::printf(
      "expected shape (paper §V.A): PRISMA uses at most ~4 concurrent\n"
      "threads (3 for ResNet-50); TF-optimized allocates the maximum (30)\n"
      "regardless of need — 2-7x more than PRISMA — at similar storage\n"
      "performance.\n");
  return 0;
}
