// Stacking ablation: what composing optimization objects buys (and
// costs). Runs the same epochs through three configured pipelines —
//
//   prefetch            (the paper's parallel/prefetch object alone)
//   tiering             (the cache alone, no read-ahead)
//   prefetch|tiering    (the stacked chain from DESIGN.md §12)
//
// over a modeled NVMe backend, reporting per-epoch wall time and the
// tiering layer's hit ratio from its per-object stats section. The
// stacked pipeline's first epoch pays the same device cost as prefetch
// alone; later epochs are served from the fast tier. Writes
// machine-readable results to BENCH_ablation_stacking.json.
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "dataplane/pipeline_builder.hpp"
#include "storage/shuffler.hpp"
#include "storage/synthetic_backend.hpp"

namespace prisma {
namespace {

constexpr int kEpochs = 3;

struct SpecResult {
  std::string spec;
  std::vector<double> epoch_seconds;
  double fast_hit_ratio = 0.0;  // tiering reads served from the fast tier
  double promotions = 0.0;
};

SpecResult RunSpec(const std::string& spec,
                   const storage::ImageNetDataset& ds,
                   const std::shared_ptr<storage::SyntheticBackend>& backend) {
  SpecResult result;
  result.spec = spec;

  dataplane::PipelineOptions opts;
  opts.prefetch.initial_producers = 4;
  opts.prefetch.max_producers = 4;
  opts.prefetch.buffer_capacity = 64;
  opts.tiering.fast_tier_capacity = 1ull << 30;  // the working set fits
  auto built = dataplane::BuildStagePipeline(spec, backend, opts,
                                             SteadyClock::Shared());
  if (!built.ok()) {
    std::fprintf(stderr, "ablation_stacking: bad spec %s: %s\n", spec.c_str(),
                 built.status().ToString().c_str());
    return result;
  }
  dataplane::StagePipeline pipeline = std::move(*built);
  if (!pipeline.Start().ok()) return result;

  const auto tiering_gauge = [&pipeline](const char* key) {
    const auto stats = pipeline.CollectStats();
    const auto* tiering = stats.FindObject("tiering");
    return tiering ? tiering->Get(key, 0.0) : 0.0;
  };

  storage::EpochShuffler shuffler(ds.train.Names(), 17);
  for (int e = 0; e < kEpochs; ++e) {
    const auto order = shuffler.OrderFor(static_cast<std::uint64_t>(e));
    PRISMA_IGNORE_STATUS(
        pipeline.BeginEpoch(static_cast<std::uint64_t>(e), order),
        "prefetch hint only; the reads below are what is measured");
    const auto t0 = std::chrono::steady_clock::now();
    for (const auto& name : order) {
      std::vector<std::byte> buf(*ds.train.SizeOf(name));
      if (!pipeline.Read(name, 0, buf).ok()) {
        std::fprintf(stderr, "ablation_stacking: read failed\n");
        pipeline.Stop();
        return result;
      }
    }
    result.epoch_seconds.push_back(
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count());
    // Let background promotions land before the next epoch, so the
    // measurement separates "cold tier" from "warm tier" cleanly.
    for (int i = 0;
         i < 500 && tiering_gauge("promotions") <
                        static_cast<double>(ds.train.NumFiles());
         ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }

  const double fast_hits = tiering_gauge("fast_hits");
  const double slow_reads = tiering_gauge("slow_reads");
  result.promotions = tiering_gauge("promotions");
  if (fast_hits + slow_reads > 0) {
    result.fast_hit_ratio = fast_hits / (fast_hits + slow_reads);
  }
  pipeline.Stop();
  return result;
}

void WriteJson(const char* path, const std::vector<SpecResult>& results) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "ablation_stacking: cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"ablation_stacking\",\n  \"runs\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    std::fprintf(f, "    {\"stage_pipeline\": \"%s\", \"epoch_seconds\": [",
                 r.spec.c_str());
    for (std::size_t e = 0; e < r.epoch_seconds.size(); ++e) {
      std::fprintf(f, "%s%.4f", e ? ", " : "", r.epoch_seconds[e]);
    }
    std::fprintf(f,
                 "], \"fast_hit_ratio\": %.3f, \"promotions\": %.0f}%s\n",
                 r.fast_hit_ratio, r.promotions,
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace
}  // namespace prisma

int main(int argc, char** argv) {
  using namespace prisma;
  const char* out_path = "BENCH_ablation_stacking.json";
  if (argc > 1) out_path = argv[1];

  storage::SyntheticImageNetSpec spec;
  spec.num_train = 300;
  spec.num_validation = 5;
  spec.mean_file_size = 32 * 1024;
  spec.min_file_size = 8 * 1024;
  const auto ds = storage::MakeSyntheticImageNet(spec);

  storage::SyntheticBackendOptions o;
  o.profile = storage::DeviceProfile::NvmeP4600();
  o.time_scale = 0.02;  // modeled device latency, 50x compressed
  auto backend = std::make_shared<storage::SyntheticBackend>(o, ds);

  std::printf("# ablation_stacking: composed pipelines over one NVMe model\n");
  std::printf("%-20s %-30s %-16s %-12s\n", "stage_pipeline", "epoch_seconds",
              "fast_hit_ratio", "promotions");
  std::vector<SpecResult> results;
  for (const char* pipeline_spec : {"prefetch", "tiering", "prefetch|tiering"}) {
    auto r = RunSpec(pipeline_spec, ds, backend);
    if (r.epoch_seconds.size() != kEpochs) return 1;
    std::string epochs;
    for (const double s : r.epoch_seconds) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%s%.3f", epochs.empty() ? "" : " ", s);
      epochs += buf;
    }
    std::printf("%-20s %-30s %-16.3f %-12.0f\n", r.spec.c_str(),
                epochs.c_str(), r.fast_hit_ratio, r.promotions);
    results.push_back(std::move(r));
  }
  prisma::WriteJson(out_path, results);
  std::printf("# wrote %s\n", out_path);
  return 0;
}
