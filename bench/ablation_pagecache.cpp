// Ablation A2 — how much usable page cache invalidates the premise?
//
// The paper's testbed has 384 GiB of RAM against a 138 GiB dataset, yet
// training stays I/O-bound: the *usable* cache (after framework tensors,
// decode workspace, co-tenants) is far smaller than the dataset. This
// sweep varies the modeled usable cache as a fraction of the dataset and
// shows where repeated epochs start hitting memory instead of the device
// — and with it, where storage-layer optimizations stop mattering.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"

using namespace prisma;
using namespace prisma::bench;
using namespace prisma::baselines;

int main() {
  const std::size_t scale = BenchScale();

  PrintHeader("Ablation A2 — usable page cache vs training time (LeNet)");
  std::printf("ImageNet/%zu, batch 256, 10 epochs\n", scale);

  ExperimentConfig base;
  base.model = sim::ModelProfile::LeNet();
  base.global_batch = 256;
  base.scale = scale;
  base.seed = 1001;

  const auto ds = MakeDataset(base);
  const std::uint64_t dataset_bytes =
      ds.train.TotalBytes() + ds.validation.TotalBytes();

  std::printf("\n%10s | %13s | %13s | %10s\n", "cache", "TF baseline",
              "PRISMA", "gain");
  for (const double frac : {0.0, 0.25, 0.5, 0.9, 1.1}) {
    ExperimentConfig cfg = base;
    cfg.page_cache_bytes =
        static_cast<std::uint64_t>(frac * static_cast<double>(dataset_bytes));
    const auto baseline = RunTfBaseline(cfg);
    const auto prisma = RunPrismaTf(cfg);
    std::printf("%9.0f%% | %13.0f | %13.0f | %9.1f%%\n", frac * 100,
                baseline.full_scale_estimate_s, prisma.full_scale_estimate_s,
                ReductionPct(prisma.full_scale_estimate_s,
                             baseline.full_scale_estimate_s));
  }

  PrintRule();
  std::printf(
      "reading: while the usable cache is well below the dataset size the\n"
      "device serves (nearly) every epoch and PRISMA's benefit holds. Once\n"
      "the whole dataset fits (>100%%), epochs 2+ run from memory, the\n"
      "baseline collapses toward the optimized setups, and storage-layer\n"
      "optimizations stop mattering — the regime the paper's setup (and\n"
      "our default cache=0) deliberately avoids.\n");
  return 0;
}
