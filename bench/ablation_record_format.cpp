// Ablation A6 — optimized data formats: per-file reads vs record shards.
//
// The paper lists "optimized data formats (e.g., TFRecord)" among the
// storage-backend optimizations a decoupled data plane should host (§II).
// This bench quantifies why on the calibrated device model: one training
// epoch ingested as (a) per-file random reads at several concurrency
// levels vs (b) large sequential shard reads. Shards amortize the
// per-request issue latency and ride the device's sequential bandwidth,
// which is exactly the mechanism TFRecord exploits.
//
// Uses the analytic DeviceModel directly (no DES needed): ingest time =
// sum of service times at the given steady-state concurrency.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "storage/device_model.hpp"

using namespace prisma;
using namespace prisma::bench;

namespace {

/// Epoch ingest time for n_requests of req_bytes each at concurrency c:
/// every request is serviced at the shared per-stream rate, c at a time.
double IngestSeconds(const storage::DeviceModel& model,
                     std::uint64_t n_requests, std::uint64_t req_bytes,
                     std::uint32_t c) {
  const double per_request = ToSeconds(model.ServiceTime(req_bytes, c));
  // c requests proceed in parallel: wall time = ceil(n/c) * service.
  const double waves =
      static_cast<double>((n_requests + c - 1) / c);
  return waves * per_request;
}

}  // namespace

int main() {
  const std::size_t scale = BenchScale();
  const std::uint64_t files = 1'281'167ull / scale;
  const std::uint64_t mean_file = 113 * 1024;
  const std::uint64_t total_bytes = files * mean_file;

  const storage::DeviceModel model(storage::DeviceProfile::NvmeP4600());

  PrintHeader("Ablation A6 — per-file reads vs record shards (one epoch)");
  std::printf("%llu files x 113 KiB (ImageNet/%zu, %.1f GiB total)\n",
              static_cast<unsigned long long>(files), scale,
              static_cast<double>(total_bytes) / (1ull << 30));

  std::printf("\nper-file random reads:\n  %12s %14s %14s\n", "concurrency",
              "epoch (s)", "MB/s");
  for (const std::uint32_t c : {1u, 4u, 8u, 30u}) {
    const double secs = IngestSeconds(model, files, mean_file, c);
    std::printf("  %12u %14.1f %14.0f\n", c, secs,
                static_cast<double>(total_bytes) / secs / 1e6);
  }

  std::printf("\nrecord shards (single sequential reader):\n");
  std::printf("  %12s %8s %13s %12s %12s\n", "shard size", "shards",
              "epoch@c1 (s)", "vs file@c1", "vs file@c30");
  const double file_c1 = IngestSeconds(model, files, mean_file, 1);
  const double file_c30 = IngestSeconds(model, files, mean_file, 30);
  for (const std::uint64_t shard_mib : {16ull, 64ull, 256ull, 1024ull}) {
    const std::uint64_t shard_bytes = shard_mib << 20;
    const std::uint64_t shards =
        (total_bytes + shard_bytes - 1) / shard_bytes;
    const double c1 = IngestSeconds(model, shards, shard_bytes, 1);
    std::printf("  %9lluMiB %8llu %13.1f %11.1fx %11.1fx\n",
                static_cast<unsigned long long>(shard_mib),
                static_cast<unsigned long long>(shards), c1, file_c1 / c1,
                file_c30 / c1);
  }

  PrintRule();
  std::printf(
      "reading: small per-file reads pay the ~80 us issue latency once per\n"
      "sample and only reach device bandwidth at ~30 outstanding requests.\n"
      "A SINGLE thread streaming 16-64 MiB shards matches that 30-thread\n"
      "configuration (~2.6x faster than one random-read thread) — the\n"
      "TFRecord effect, here as a stackable substrate: ShardedBackend\n"
      "under PrefetchObject composes both optimizations with zero\n"
      "framework changes (tests/record_format_test.cpp).\n");
  return 0;
}
