// Figure 4 reproduction: average training time of PyTorch with 0-16
// DataLoader worker processes vs PRISMA, LeNet and AlexNet, batch 256,
// avg ± stddev over 5 seeds. Prints the §V.B absolute-delta table
// (PRISMA advantage per worker count) next to the paper's values.
//
// Shape under test: PRISMA wins clearly at 0/2/4 workers (pre-epoch
// prefetch head start + no worker respawns), loses slightly at 8/16
// (buffer-synchronization bottleneck), and stays flat across the sweep
// so users need not tune the worker count at all.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"

using namespace prisma;
using namespace prisma::bench;
using namespace prisma::baselines;

namespace {

double PaperDelta(const std::string& model, std::size_t workers) {
  // §V.B: training-time deltas (PyTorch minus PRISMA, s); positive means
  // PRISMA was faster.
  if (model == "lenet") {
    switch (workers) {
      case 0: return 2618;
      case 2: return 1085;
      case 4: return 176;
      case 8: return -362;
      case 16: return -405;
    }
  }
  if (model == "alexnet") {
    switch (workers) {
      case 0: return 2710;
      case 2: return 1171;
      case 4: return 337;
      case 8: return -211;
      case 16: return -542;
    }
  }
  return 0;
}

}  // namespace

int main() {
  const std::size_t scale = BenchScale();
  const int runs = BenchRuns();

  PrintHeader("Figure 4 — PyTorch worker sweep vs PRISMA (batch 256)");
  std::printf("dataset = ImageNet/%zu, epochs = 10, %d runs; times are\n",
              scale, runs);
  std::printf("full-scale estimates (s); delta = PyTorch - PRISMA\n");

  const std::vector<sim::ModelProfile> models = {
      sim::ModelProfile::LeNet(), sim::ModelProfile::AlexNet()};
  const std::vector<std::size_t> worker_counts = {0, 2, 4, 8, 16};

  for (const auto& model : models) {
    PrintRule();
    std::printf("%-8s %7s | %14s | %14s | %10s | %10s | %6s\n",
                model.name.c_str(), "workers", "PyTorch", "PRISMA", "delta",
                "paperΔ", "t*");
    for (const std::size_t w : worker_counts) {
      ExperimentConfig cfg;
      cfg.model = model;
      cfg.global_batch = 256;
      cfg.scale = scale;

      const Summary native = RunSeeds(
          cfg, runs, [w](const ExperimentConfig& c) { return RunTorch(c, w); });
      const Summary prisma = RunSeeds(cfg, runs, [w](const ExperimentConfig& c) {
        return RunPrismaTorch(c, w);
      });

      std::printf(
          "%-8s %7zu | %8.0f ±%3.0f | %8.0f ±%3.0f | %+10.0f | %+10.0f | %6u\n",
          "", w, native.mean_s, native.stddev_s, prisma.mean_s,
          prisma.stddev_s, native.mean_s - prisma.mean_s,
          PaperDelta(model.name, w), prisma.last.final_producers);
    }
  }

  PrintRule();
  std::printf(
      "expected shape (paper §V.B): PRISMA beats PyTorch at 0/2/4 workers\n"
      "(it starts prefetching before the epoch begins), loses slightly at\n"
      "8/16 (consumer/producer synchronization on the shared buffer), and\n"
      "is flat across worker counts — no manual tuning needed.\n");
  return 0;
}
