// IPC throughput bench: the PyTorch-deployment shape (N worker processes
// -> one PRISMA stage over UDS), measured end to end through the
// zero-copy path. Reports steady-state ns/sample, MB/s, and the
// zero-copy trajectory metrics (copies/sample, bytes copied/sample,
// pool allocs/sample), and writes machine-readable results to
// BENCH_ipc_throughput.json.
//
// Workers here are threads, each owning its own UdsClient connection —
// the wire work per request is identical to separate processes; only the
// address space is shared (and the copy counters rely on that).
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/buffer_pool.hpp"
#include "dataplane/prefetch_object.hpp"
#include "dataplane/stage.hpp"
#include "ipc/uds_client.hpp"
#include "ipc/uds_server.hpp"
#include "storage/synthetic_backend.hpp"

namespace prisma {
namespace {

struct RunResult {
  int workers = 0;
  std::string engine;            // engine actually selected by the server
  std::size_t server_threads = 0;  // loops + offload: stays O(cores)
  std::uint64_t samples = 0;
  std::uint64_t bytes = 0;
  double wall_seconds = 0.0;
  double ns_per_sample = 0.0;
  double mb_per_second = 0.0;
  double copies_per_sample = 0.0;
  double bytes_copied_per_sample = 0.0;
  double allocs_per_sample = 0.0;
};

RunResult RunConfig(int workers, int epochs, EventEngineOptions::Kind kind) {
  storage::SyntheticImageNetSpec spec;
  spec.num_train = 256;
  spec.num_validation = 1;
  spec.mean_file_size = 64 * 1024;
  spec.min_file_size = 32 * 1024;
  const auto ds = storage::MakeSyntheticImageNet(spec);

  storage::SyntheticBackendOptions o;
  o.profile = storage::DeviceProfile::Instant();
  o.time_scale = 0.0;
  auto backend = std::make_shared<storage::SyntheticBackend>(o, ds);

  dataplane::PrefetchOptions po;
  po.initial_producers = 2;
  po.max_producers = 4;
  po.buffer_capacity = 64;
  auto object = std::make_shared<dataplane::PrefetchObject>(
      backend, po, SteadyClock::Shared());
  auto stage = std::make_shared<dataplane::Stage>(
      dataplane::StageInfo{"ipc-bench", "pytorch", 0}, object);
  if (!stage->Start().ok()) return {};

  const std::string socket_path = "/tmp/prisma_ipc_bench_" +
                                  std::to_string(::getpid()) + "_" +
                                  std::to_string(workers) + ".sock";
  ipc::UdsServer::Options server_opts;
  server_opts.engine.kind = kind;
  ipc::UdsServer server(socket_path, stage, server_opts);
  if (!server.Start().ok()) {
    stage->Stop();
    return {};
  }

  const auto names = ds.train.Names();
  std::vector<std::uint64_t> sizes(names.size());
  std::uint64_t epoch_bytes = 0;
  std::uint64_t max_size = 0;
  for (std::size_t i = 0; i < names.size(); ++i) {
    sizes[i] = *ds.train.SizeOf(names[i]);
    epoch_bytes += sizes[i];
    max_size = std::max(max_size, sizes[i]);
  }

  // One warm-up epoch populates the buffer pool's free lists so the
  // measured epochs see the steady state a long training run lives in.
  ipc::UdsClient announcer;
  PRISMA_IGNORE_STATUS(announcer.Connect(socket_path),
                       "warm-up; failures surface in the measured epochs");

  const auto run_epoch = [&](std::uint64_t epoch) {
    std::atomic<int> failures{0};
    PRISMA_IGNORE_STATUS(announcer.BeginEpoch(epoch, names),
                         "prefetch hint only; reads are what is measured");
    std::vector<std::thread> fleet;
    for (int w = 0; w < workers; ++w) {
      fleet.emplace_back([&, w] {
        ipc::UdsClient client;
        if (!client.Connect(socket_path).ok()) {
          ++failures;
          return;
        }
        std::vector<std::byte> dst(max_size);
        for (std::size_t i = static_cast<std::size_t>(w); i < names.size();
             i += static_cast<std::size_t>(workers)) {
          auto n = client.Read(names[i], 0, dst);
          if (!n.ok() || *n != sizes[i]) ++failures;
        }
      });
    }
    for (auto& t : fleet) t.join();
    return failures.load() == 0;
  };

  RunResult result;
  result.workers = workers;
  result.engine = std::string(server.engine_name());
  result.server_threads = server.server_threads();
  bool ok = run_epoch(0);  // warm-up

  const std::uint64_t copies0 = CopyAccounting::Copies();
  const std::uint64_t copy_bytes0 = CopyAccounting::CopiedBytes();
  const std::uint64_t allocs0 = object->CollectStats().pool_misses;
  const auto t0 = std::chrono::steady_clock::now();
  for (int e = 1; e <= epochs && ok; ++e) ok = run_epoch(static_cast<std::uint64_t>(e));
  const auto t1 = std::chrono::steady_clock::now();
  const std::uint64_t allocs1 = object->CollectStats().pool_misses;

  server.Stop();
  stage->Stop();
  if (!ok) {
    std::fprintf(stderr, "ipc_throughput: worker failures at %d workers\n",
                 workers);
    return {};
  }

  result.samples = static_cast<std::uint64_t>(epochs) * names.size();
  result.bytes = static_cast<std::uint64_t>(epochs) * epoch_bytes;
  result.wall_seconds =
      std::chrono::duration<double>(t1 - t0).count();
  result.ns_per_sample =
      result.wall_seconds * 1e9 / static_cast<double>(result.samples);
  result.mb_per_second = static_cast<double>(result.bytes) / 1e6 /
                         result.wall_seconds;
  result.copies_per_sample =
      static_cast<double>(CopyAccounting::Copies() - copies0) /
      static_cast<double>(result.samples);
  result.bytes_copied_per_sample =
      static_cast<double>(CopyAccounting::CopiedBytes() - copy_bytes0) /
      static_cast<double>(result.samples);
  result.allocs_per_sample = static_cast<double>(allocs1 - allocs0) /
                             static_cast<double>(result.samples);
  return result;
}

void WriteJson(const char* path, const std::vector<RunResult>& results) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "ipc_throughput: cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"ipc_throughput\",\n  \"runs\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    std::fprintf(f,
                 "    {\"workers\": %d, \"engine\": \"%s\", "
                 "\"server_threads\": %zu, "
                 "\"samples\": %llu, \"bytes\": %llu, "
                 "\"wall_seconds\": %.6f, \"ns_per_sample\": %.1f, "
                 "\"mb_per_second\": %.1f, \"copies_per_sample\": %.3f, "
                 "\"bytes_copied_per_sample\": %.1f, "
                 "\"allocs_per_sample\": %.4f}%s\n",
                 r.workers, r.engine.c_str(), r.server_threads,
                 static_cast<unsigned long long>(r.samples),
                 static_cast<unsigned long long>(r.bytes), r.wall_seconds,
                 r.ns_per_sample, r.mb_per_second, r.copies_per_sample,
                 r.bytes_copied_per_sample, r.allocs_per_sample,
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace
}  // namespace prisma

int main(int argc, char** argv) {
  const char* out_path = "BENCH_ipc_throughput.json";
  if (argc > 1) out_path = argv[1];

  std::printf("# ipc_throughput: N UDS workers -> one PRISMA stage\n");
  std::printf("%-10s %-8s %-8s %-12s %-10s %-16s %-20s %-14s\n", "engine",
              "workers", "srv_thr", "ns/sample", "MB/s", "copies/sample",
              "bytes_copied/sample", "allocs/sample");
  std::vector<prisma::RunResult> results;
  // Sweep both engines; when io_uring is unavailable kAuto resolves to
  // epoll and the explicit epoll pass would duplicate it — skip it then.
  for (const auto kind : {prisma::EventEngineOptions::Kind::kAuto,
                          prisma::EventEngineOptions::Kind::kEpoll}) {
    if (kind == prisma::EventEngineOptions::Kind::kEpoll &&
        !results.empty() && results.front().engine == "epoll") {
      break;
    }
    for (const int workers : {1, 8, 64, 256}) {
      const auto r = prisma::RunConfig(workers, /*epochs=*/3, kind);
      if (r.samples == 0) return 1;
      std::printf("%-10s %-8d %-8zu %-12.0f %-10.1f %-16.3f %-20.1f %-14.4f\n",
                  r.engine.c_str(), r.workers, r.server_threads,
                  r.ns_per_sample, r.mb_per_second, r.copies_per_sample,
                  r.bytes_copied_per_sample, r.allocs_per_sample);
      results.push_back(r);
    }
  }
  prisma::WriteJson(out_path, results);
  std::printf("# wrote %s\n", out_path);
  return 0;
}
