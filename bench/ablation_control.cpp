// Ablation A7 — swapping the control algorithm (§V.A: "The same may not
// hold true when considering other control algorithms").
//
// Same data plane, same knobs, three control algorithms:
//   * PRISMA probing tuner  — starvation-driven, rate-probing plateau
//                             detection (the paper's algorithm);
//   * PID occupancy control — classical feedback holding the buffer at a
//                             50% setpoint;
//   * fixed best-effort     — pinned t = max (greedy, TF-style).
// Reported: training time AND the thread footprint that bought it.
#include <cstdio>

#include "bench_util.hpp"

using namespace prisma;
using namespace prisma::bench;
using namespace prisma::baselines;

namespace {

void Report(const char* tag, const Summary& s) {
  std::printf("  %-22s %8.0f s ±%-4.0f | final t=%2u  max t=%2u  N=%zu\n",
              tag, s.mean_s, s.stddev_s, s.last.final_producers,
              s.last.max_producers_seen, s.last.final_buffer);
}

}  // namespace

int main() {
  const std::size_t scale = BenchScale();
  const int runs = std::min(BenchRuns(), 3);

  PrintHeader("Ablation A7 — control algorithms on identical knobs");
  std::printf("ImageNet/%zu, batch 256, 10 epochs, %d runs\n", scale, runs);

  for (const bool io_bound : {true, false}) {
    ExperimentConfig base;
    base.model = io_bound ? sim::ModelProfile::LeNet()
                          : sim::ModelProfile::ResNet50();
    base.global_batch = 256;
    base.scale = scale;

    PrintRule();
    std::printf("%s (%s)\n", base.model.name.c_str(),
                io_bound ? "I/O-bound" : "compute-bound");

    ExperimentConfig prisma = base;
    Report("PRISMA probing tuner", RunSeeds(prisma, runs, RunPrismaTf));

    ExperimentConfig pid = base;
    pid.control_algorithm =
        ExperimentConfig::ControlAlgorithm::kPidOccupancy;
    Report("PID occupancy (50%)", RunSeeds(pid, runs, RunPrismaTf));

    ExperimentConfig greedy = base;
    greedy.fixed_producers = greedy.prisma_tuner.max_producers;
    greedy.fixed_buffer = 512;
    Report("fixed t=max (greedy)", RunSeeds(greedy, runs, RunPrismaTf));
  }

  PrintRule();
  std::printf(
      "reading: on the I/O-bound job all three reach similar training\n"
      "times, but the PID cannot see the device plateau through occupancy\n"
      "alone — the consumer drains the buffer below the setpoint no matter\n"
      "what, the integral winds up, and it pegs t at max, like the greedy\n"
      "setup. Only the probing tuner holds performance at ~4 threads. On\n"
      "the compute-bound job the buffer sits full: the probing tuner never\n"
      "leaves the knee and the PID decays back down (slowly — it first\n"
      "wound up during the initial fill). Same knobs, same stage: the\n"
      "control algorithm is a swappable policy precisely because these\n"
      "trade-offs are workload-dependent (paper §V.A's caveat, quantified).\n");
  return 0;
}
