// Ablation A3 — the (t, N) response surface behind the auto-tuner.
//
// Sweeps producer threads t at a fixed generous buffer, and buffer
// capacity N at the knee thread count, printing throughput so the device
// knee and the minimum useful buffer are visible. This is the surface the
// feedback loop walks in bench/ablation_autotune.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"

using namespace prisma;
using namespace prisma::bench;
using namespace prisma::baselines;

int main() {
  const std::size_t scale = BenchScale();

  PrintHeader("Ablation A3 — producer/buffer response surface (LeNet)");
  std::printf("ImageNet/%zu, batch 256; throughput = trained samples /\n",
              scale);
  std::printf("training second (higher is better)\n");

  ExperimentConfig base;
  base.model = sim::ModelProfile::LeNet();
  base.global_batch = 256;
  base.scale = scale;
  base.seed = 1001;

  std::printf("\nthread sweep (N = 512):\n  %6s %14s %12s\n", "t",
              "time (s)", "samples/s");
  double prev_rate = 0.0;
  std::uint32_t knee_guess = 1;
  for (const std::uint32_t t : {1u, 2u, 3u, 4u, 5u, 6u, 8u, 12u, 16u}) {
    ExperimentConfig cfg = base;
    cfg.fixed_producers = t;
    cfg.fixed_buffer = 512;
    const auto r = RunPrismaTf(cfg);
    const double rate = static_cast<double>(r.samples_trained) /
                        (r.elapsed_s - r.fixed_overhead_s);
    std::printf("  %6u %14.0f %12.0f\n", t, r.full_scale_estimate_s, rate);
    if (rate > prev_rate * 1.05) knee_guess = t;
    prev_rate = rate;
  }
  std::printf("  knee: gains stop near t=%u (device concurrency knee)\n",
              knee_guess);

  std::printf("\nbuffer sweep (t = 4):\n  %6s %14s\n", "N", "time (s)");
  for (const std::size_t n : {1ul, 2ul, 4ul, 8ul, 16ul, 64ul, 256ul, 1024ul}) {
    ExperimentConfig cfg = base;
    cfg.fixed_producers = 4;
    cfg.fixed_buffer = n;
    const auto r = RunPrismaTf(cfg);
    std::printf("  %6zu %14.0f\n", n, r.full_scale_estimate_s);
  }
  PrintRule();
  std::printf(
      "reading: time falls steeply until t reaches the device knee, then\n"
      "flattens — extra threads are pure over-provisioning (cf. Fig. 3).\n"
      "Tiny buffers (N < t) serialize the producers; beyond a few tens of\n"
      "samples, added capacity is memory spent for nothing.\n");
  return 0;
}
