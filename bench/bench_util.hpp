// Shared helpers for the figure-reproduction benches: multi-seed runs
// (the paper reports avg +/- stddev of 5 runs), simple aligned tables,
// and paper-reference comparison rows.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "baselines/experiment.hpp"
#include "common/stats.hpp"

namespace prisma::bench {

struct Summary {
  double mean_s = 0.0;
  double stddev_s = 0.0;
  baselines::RunResult last;  // timelines/knobs of the final run
};

/// Runs `fn` with `runs` different seeds (paper methodology: 5 runs) and
/// summarises the full-scale time estimates.
inline Summary RunSeeds(
    baselines::ExperimentConfig cfg, int runs,
    const std::function<baselines::RunResult(const baselines::ExperimentConfig&)>&
        fn) {
  RunningStats stats;
  Summary out;
  for (int i = 0; i < runs; ++i) {
    cfg.seed = 1000 + static_cast<std::uint64_t>(i);
    out.last = fn(cfg);
    stats.Add(out.last.full_scale_estimate_s);
  }
  out.mean_s = stats.Mean();
  out.stddev_s = stats.StdDev();
  return out;
}

/// Environment-tunable bench scale: PRISMA_BENCH_SCALE (dataset divisor,
/// default 100 -> ~12.8k train files/epoch) and PRISMA_BENCH_RUNS
/// (default 5, as in the paper).
inline std::size_t BenchScale(std::size_t fallback = 100) {
  if (const char* v = std::getenv("PRISMA_BENCH_SCALE")) {
    const long parsed = std::atol(v);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
  }
  return fallback;
}

inline int BenchRuns(int fallback = 5) {
  if (const char* v = std::getenv("PRISMA_BENCH_RUNS")) {
    const int parsed = std::atoi(v);
    if (parsed > 0) return parsed;
  }
  return fallback;
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("==============================================================\n");
}

inline void PrintRule() {
  std::printf("--------------------------------------------------------------\n");
}

/// Percentage reduction of `value` vs `baseline` (positive == faster).
inline double ReductionPct(double value, double baseline) {
  return baseline > 0.0 ? 100.0 * (1.0 - value / baseline) : 0.0;
}

}  // namespace prisma::bench
