// A5 — google-benchmark microbenchmarks of the live data plane: the
// sample buffer (including the contended path behind the paper's
// 8+-worker bottleneck), queues, wire codec, UDS round trips, and
// end-to-end prefetch throughput.
#include <benchmark/benchmark.h>

#include <unistd.h>

#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/bounded_queue.hpp"
#include "common/buffer_pool.hpp"
#include "common/spsc_ring.hpp"
#include "dataplane/prefetch_object.hpp"
#include "dataplane/sample_buffer.hpp"
#include "ipc/uds_client.hpp"
#include "ipc/uds_server.hpp"
#include "ipc/wire.hpp"
#include "storage/synthetic_backend.hpp"

namespace prisma {
namespace {

using dataplane::PrefetchObject;
using dataplane::PrefetchOptions;
using dataplane::Sample;
using dataplane::SampleBuffer;

// --- SampleBuffer ------------------------------------------------------------

void BM_SampleBufferInsertTake(benchmark::State& state) {
  SampleBuffer buf(1024, SteadyClock::Shared());
  const std::size_t payload = static_cast<std::size_t>(state.range(0));
  std::size_t i = 0;
  for (auto _ : state) {
    const std::string name = "f" + std::to_string(i++ & 1023);
    benchmark::DoNotOptimize(
        buf.Insert(Sample{name, std::vector<std::byte>(payload)}));
    auto taken = buf.Take(name);
    benchmark::DoNotOptimize(taken);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(payload));
}
BENCHMARK(BM_SampleBufferInsertTake)->Arg(1024)->Arg(113 * 1024);

void BM_SampleBufferContended(benchmark::State& state) {
  // The synchronization point the paper identifies for 8+ workers: many
  // consumers hammering the shared buffer. range(0) is the number of
  // *background* consumer threads (the timed thread is one more),
  // range(1) the shard count — 1 reproduces the prototype's single-mutex
  // buffer, so each row pair quantifies the sharding win at that
  // concurrency level.
  const int consumers = static_cast<int>(state.range(0));
  const auto shards = static_cast<std::size_t>(state.range(1));
  SampleBuffer buf(4096, SteadyClock::Shared(), shards);
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> seq{0};

  std::vector<std::thread> fleet;
  for (int c = 0; c < consumers; ++c) {
    fleet.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        const std::uint64_t i = seq.fetch_add(1, std::memory_order_relaxed);
        const std::string name = "c" + std::to_string(i);
        if (!buf.Insert(Sample{name, std::vector<std::byte>(512)}).ok()) break;
        PRISMA_IGNORE_STATUS(buf.Take(name),
                             "contender loop; races with Close are expected");
      }
    });
  }
  std::size_t i = 0;
  for (auto _ : state) {
    const std::string name = "m" + std::to_string(i++);
    benchmark::DoNotOptimize(
        buf.Insert(Sample{name, std::vector<std::byte>(512)}));
    PRISMA_IGNORE_STATUS(buf.Take(name),
                         "throughput loop; a miss is part of the workload");
  }
  stop = true;
  buf.Close();
  for (auto& t : fleet) t.join();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SampleBufferContended)
    ->ArgNames({"consumers", "shards"})
    ->Args({0, 1})
    ->Args({0, 16})
    ->Args({7, 1})
    ->Args({7, 16})
    ->Args({31, 1})
    ->Args({31, 16});

// --- queues --------------------------------------------------------------------

void BM_BoundedQueuePushPop(benchmark::State& state) {
  BoundedQueue<int> q(1024);
  for (auto _ : state) {
    benchmark::DoNotOptimize(q.Push(1));
    benchmark::DoNotOptimize(q.Pop());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BoundedQueuePushPop);

void BM_SpscRingPushPop(benchmark::State& state) {
  SpscRing<int> r(1024);
  for (auto _ : state) {
    benchmark::DoNotOptimize(r.TryPush(1));
    benchmark::DoNotOptimize(r.TryPop());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpscRingPushPop);

// --- wire codec ------------------------------------------------------------------

void BM_WireEncodeDecodeRequest(benchmark::State& state) {
  ipc::Request req;
  req.op = ipc::Op::kRead;
  req.path = "train/00012345.jpg";
  req.offset = 4096;
  req.length = 113 * 1024;
  for (auto _ : state) {
    const auto bytes = ipc::EncodeRequest(req);
    auto decoded = ipc::DecodeRequest(bytes);
    benchmark::DoNotOptimize(decoded);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WireEncodeDecodeRequest);

void BM_WireEncodeDecodeResponse(benchmark::State& state) {
  ipc::Response resp;
  resp.data.resize(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    const auto bytes = ipc::EncodeResponse(resp);
    auto decoded = ipc::DecodeResponse(bytes);
    benchmark::DoNotOptimize(decoded);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_WireEncodeDecodeResponse)->Arg(1024)->Arg(113 * 1024);

// --- UDS round trip ----------------------------------------------------------------

class UdsFixture : public benchmark::Fixture {
 public:
  void SetUp(const benchmark::State& state) override {
    storage::SyntheticImageNetSpec spec;
    spec.num_train = 64;
    spec.num_validation = 1;
    spec.mean_file_size = static_cast<double>(state.range(0));
    spec.min_file_size = static_cast<std::uint64_t>(state.range(0));
    spec.sigma = 0.0001;
    ds_ = storage::MakeSyntheticImageNet(spec);

    storage::SyntheticBackendOptions o;
    o.profile = storage::DeviceProfile::Instant();
    o.time_scale = 0.0;
    auto backend = std::make_shared<storage::SyntheticBackend>(o, ds_);
    object_ = std::make_shared<PrefetchObject>(
        backend, PrefetchOptions{}, SteadyClock::Shared());
    stage_ = std::make_shared<dataplane::Stage>(
        dataplane::StageInfo{"bench", "bench", 0}, object_);
    (void)stage_->Start();

    socket_path_ = "/tmp/prisma_bench_" + std::to_string(::getpid()) + ".sock";
    server_ = std::make_unique<ipc::UdsServer>(socket_path_, stage_);
    PRISMA_IGNORE_STATUS(server_->Start(),
                         "bench fixture; failure surfaces on first RPC");
    PRISMA_IGNORE_STATUS(client_.Connect(socket_path_),
                         "bench fixture; failure surfaces on first RPC");
  }

  void TearDown(const benchmark::State&) override {
    client_.Close();
    server_->Stop();
    stage_->Stop();
    server_.reset();
  }

  storage::ImageNetDataset ds_;
  std::shared_ptr<PrefetchObject> object_;
  std::shared_ptr<dataplane::Stage> stage_;
  std::string socket_path_;
  std::unique_ptr<ipc::UdsServer> server_;
  ipc::UdsClient client_;
};

BENCHMARK_DEFINE_F(UdsFixture, RoundTripRead)(benchmark::State& state) {
  std::vector<std::byte> buf(static_cast<std::size_t>(state.range(0)));
  const std::uint64_t copies0 = CopyAccounting::Copies();
  const std::uint64_t copy_bytes0 = CopyAccounting::CopiedBytes();
  const std::uint64_t allocs0 = object_->CollectStats().pool_misses;
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& name = ds_.train.At(i++ % ds_.train.NumFiles()).name;
    auto n = client_.Read(name, 0, buf);
    benchmark::DoNotOptimize(n);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(state.iterations() * state.range(0));
  // Zero-copy trajectory metrics: counted consumer-path copies, bytes
  // those copies moved, and payload allocations that missed the pool.
  // Each round trip serves exactly one sample, so allocs_per_sample is
  // the empirical counterpart of the hot-path-purity lint guarantee:
  // every allocation left on the annotated path is a BufferPool refill,
  // and this counter is those refills over samples served (~0 once the
  // pool reaches its high-water mark).
  state.counters["copies_per_op"] = benchmark::Counter(
      static_cast<double>(CopyAccounting::Copies() - copies0),
      benchmark::Counter::kAvgIterations);
  state.counters["bytes_copied_per_op"] = benchmark::Counter(
      static_cast<double>(CopyAccounting::CopiedBytes() - copy_bytes0),
      benchmark::Counter::kAvgIterations);
  state.counters["allocs_per_sample"] = benchmark::Counter(
      static_cast<double>(object_->CollectStats().pool_misses - allocs0),
      benchmark::Counter::kAvgIterations);
}
BENCHMARK_REGISTER_F(UdsFixture, RoundTripRead)->Arg(4096)->Arg(113 * 1024);

BENCHMARK_DEFINE_F(UdsFixture, Ping)(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(client_.Ping());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK_REGISTER_F(UdsFixture, Ping)->Arg(4096);

// --- end-to-end prefetch throughput ---------------------------------------------------

void BM_PrefetchEpochThroughput(benchmark::State& state) {
  storage::SyntheticImageNetSpec spec;
  spec.num_train = 256;
  spec.num_validation = 1;
  spec.mean_file_size = 16 * 1024;
  spec.min_file_size = 8 * 1024;
  const auto ds = storage::MakeSyntheticImageNet(spec);

  storage::SyntheticBackendOptions o;
  o.profile = storage::DeviceProfile::Instant();
  o.time_scale = 0.0;
  auto backend = std::make_shared<storage::SyntheticBackend>(o, ds);

  PrefetchOptions po;
  po.initial_producers = static_cast<std::uint32_t>(state.range(0));
  po.max_producers = po.initial_producers;
  po.buffer_capacity = 64;
  PrefetchObject object(backend, po, SteadyClock::Shared());
  (void)object.Start();

  const auto names = ds.train.Names();
  const auto per_sample = static_cast<double>(names.size());
  const std::uint64_t copies0 = CopyAccounting::Copies();
  const std::uint64_t copy_bytes0 = CopyAccounting::CopiedBytes();
  const std::uint64_t allocs0 = object.CollectStats().pool_misses;
  std::uint64_t epoch = 0;
  std::vector<std::byte> buf(64 * 1024);
  for (auto _ : state) {
    PRISMA_IGNORE_STATUS(object.BeginEpoch(epoch++, names),
                         "prefetch hint only; reads are what is measured");
    for (const auto& name : names) {
      auto n = object.Read(name, 0, buf);
      benchmark::DoNotOptimize(n);
    }
  }
  const std::uint64_t allocs1 = object.CollectStats().pool_misses;
  object.Stop();
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(names.size()));
  state.counters["copies_per_sample"] = benchmark::Counter(
      static_cast<double>(CopyAccounting::Copies() - copies0) / per_sample,
      benchmark::Counter::kAvgIterations);
  state.counters["bytes_copied_per_sample"] = benchmark::Counter(
      static_cast<double>(CopyAccounting::CopiedBytes() - copy_bytes0) /
          per_sample,
      benchmark::Counter::kAvgIterations);
  state.counters["allocs_per_sample"] = benchmark::Counter(
      static_cast<double>(allocs1 - allocs0) / per_sample,
      benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_PrefetchEpochThroughput)->Arg(1)->Arg(2)->Arg(4);

// --- pooled vs heap whole-file reads -------------------------------------------------

void BM_SyntheticReadAll(benchmark::State& state) {
  // pooled=0: the classic ReadAll (fresh vector per file). pooled=1: the
  // zero-copy producer path (ReadAllShared drawing recycled chunks).
  const auto bytes = static_cast<std::uint64_t>(state.range(0));
  const bool pooled = state.range(1) != 0;
  storage::SyntheticImageNetSpec spec;
  spec.num_train = 16;
  spec.num_validation = 1;
  spec.mean_file_size = static_cast<double>(bytes);
  spec.min_file_size = bytes;
  spec.sigma = 0.0001;
  const auto ds = storage::MakeSyntheticImageNet(spec);
  storage::SyntheticBackendOptions o;
  o.profile = storage::DeviceProfile::Instant();
  o.time_scale = 0.0;
  storage::SyntheticBackend backend(o, ds);
  const auto pool = BufferPool::Create(64ull * 1024 * 1024);

  std::size_t i = 0;
  for (auto _ : state) {
    const auto& name = ds.train.At(i++ % ds.train.NumFiles()).name;
    if (pooled) {
      auto payload = backend.ReadAllShared(name, pool);
      benchmark::DoNotOptimize(payload);
    } else {
      auto data = backend.ReadAll(name);
      benchmark::DoNotOptimize(data);
    }
  }
  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(bytes));
  const auto stats = pool->Stats();
  state.counters["allocs_per_op"] = benchmark::Counter(
      pooled ? static_cast<double>(stats.misses) : 1.0,
      pooled ? benchmark::Counter::kAvgIterations
             : benchmark::Counter::kDefaults);
}
BENCHMARK(BM_SyntheticReadAll)
    ->ArgNames({"bytes", "pooled"})
    ->Args({113 * 1024, 0})
    ->Args({113 * 1024, 1})
    ->Args({4096, 0})
    ->Args({4096, 1});

// --- synthetic content ------------------------------------------------------------------

void BM_SyntheticContentFill(benchmark::State& state) {
  std::vector<std::byte> buf(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    storage::SyntheticContent::Fill("bench/file.jpg", 0, buf);
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SyntheticContentFill)->Arg(4096)->Arg(113 * 1024);

}  // namespace
}  // namespace prisma

// Custom main: default to machine-readable output (BENCH_*.json) so the
// perf trajectory is tracked across PRs without remembering flags.
// Explicit --benchmark_out on the command line wins.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]).rfind("--benchmark_out", 0) == 0) {
      has_out = true;
    }
  }
  std::string out_flag = "--benchmark_out=BENCH_micro_dataplane.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
