// Ablation A4 — multi-tenant shared storage: coordinated vs uncoordinated
// (paper §II "partial visibility" and §VII "access coordination").
//
// k prefetch jobs share one storage device whose aggregate bandwidth
// degrades past an overload threshold (seek thrash / metadata contention,
// the behaviour reported for shared parallel file systems [32][37]).
//
//   * uncoordinated: every job does what a framework-intrinsic optimizer
//     does — allocates its full thread pool regardless of need;
//   * coordinated: a logically centralized controller splits a global
//     producer budget across jobs with max-min fair shares
//     (controlplane::ComputeFairShares — the same code the live
//     Controller runs).
//
// Reported: per-job completion time, makespan, and device concurrency.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "controlplane/policy.hpp"
#include "sim/primitives.hpp"
#include "sim/storage_actor.hpp"
#include "sim/task.hpp"

using namespace prisma;
using namespace prisma::bench;
using namespace prisma::sim;

namespace {

struct JobResult {
  double completion_s = 0.0;
};

struct TenantRun {
  std::vector<JobResult> jobs;
  double makespan_s = 0.0;
  double mean_device_concurrency = 0.0;
};

/// One prefetch job: `threads` producer slots streaming `files` reads of
/// `bytes` each from the shared device.
SimTask Job(SimEngine& eng, SimStorage& storage, SimResource& slots,
            std::size_t files, std::uint64_t bytes, double* done_at) {
  // Producer fan-out: files are issued through the slot pool.
  std::size_t completed = 0;
  std::vector<SimTask> readers;
  auto reader = [](SimEngine& e, SimStorage& st, SimResource& sl,
                   std::size_t* remaining, std::size_t* completed,
                   std::uint64_t bytes) -> SimTask {
    (void)e;
    while (*remaining > 0) {
      --*remaining;
      co_await sl.Acquire();
      co_await st.Read("tenant-file", bytes);
      sl.Release();
      ++*completed;
    }
  };
  // 32 worker coroutines share the remaining-counter; concurrency is
  // governed purely by the slot pool.
  std::size_t remaining = files;
  for (int i = 0; i < 32; ++i) {
    readers.push_back(
        Spawn(eng, reader, std::ref(eng), std::ref(storage), std::ref(slots),
              &remaining, &completed, bytes));
  }
  for (const auto& r : readers) co_await r;
  *done_at = ToSeconds(eng.Now());
  (void)completed;
}

TenantRun RunTenants(std::size_t k, bool coordinated,
                     std::uint32_t global_budget) {
  SimEngine eng;
  storage::DeviceProfile profile = storage::DeviceProfile::ParallelFs();
  profile.jitter_frac = 0.0;
  profile.overload_threshold = 12;
  profile.overload_penalty = 0.08;
  SimStorageOptions so;
  so.profile = profile;
  SimStorage storage(eng, so);

  constexpr std::size_t kFilesPerJob = 4000;
  constexpr std::uint64_t kBytes = 113 * 1024;

  std::vector<std::unique_ptr<SimResource>> slots;
  std::vector<double> done(k, 0.0);
  std::vector<SimTask> jobs;
  for (std::size_t j = 0; j < k; ++j) {
    // Uncoordinated: framework-intrinsic behaviour — full pool (16) each.
    // Coordinated: fair share of the global budget.
    std::uint32_t t;
    if (coordinated) {
      std::vector<controlplane::StageDemand> demands(k);
      for (auto& d : demands) {
        d.requested = 16;
        d.starvation = 1.0;
      }
      t = controlplane::ComputeFairShares(demands, global_budget)[j];
    } else {
      t = 16;
    }
    slots.push_back(std::make_unique<SimResource>(eng, t));
    jobs.push_back(Spawn(eng, Job, std::ref(eng), std::ref(storage),
                         std::ref(*slots.back()), kFilesPerJob, kBytes,
                         &done[j]));
  }
  eng.Run();

  TenantRun out;
  for (std::size_t j = 0; j < k; ++j) {
    out.jobs.push_back(JobResult{done[j]});
    out.makespan_s = std::max(out.makespan_s, done[j]);
  }
  out.mean_device_concurrency = storage.ReaderTimeline().TimeWeightedMean();
  return out;
}

}  // namespace

int main() {
  PrintHeader("Ablation A4 — k tenants on shared storage: coordination");
  std::printf("parallel-fs profile with overload past 12 concurrent reads;\n");
  std::printf("4000 x 113 KiB reads per job; budget = 12 producers total\n");

  std::printf("\n%4s | %16s | %16s | %10s\n", "k", "uncoordinated",
              "coordinated", "speedup");
  std::printf("%4s | %7s %8s | %7s %8s |\n", "", "makespan", "avg-conc",
              "makespan", "avg-conc");
  for (const std::size_t k : {1ul, 2ul, 4ul, 8ul}) {
    const TenantRun unco = RunTenants(k, /*coordinated=*/false, 12);
    const TenantRun coord = RunTenants(k, /*coordinated=*/true, 12);
    std::printf("%4zu | %7.1fs %8.1f | %7.1fs %8.1f | %9.1f%%\n", k,
                unco.makespan_s, unco.mean_device_concurrency,
                coord.makespan_s, coord.mean_device_concurrency,
                ReductionPct(coord.makespan_s, unco.makespan_s));
  }

  PrintRule();
  std::printf(
      "reading: a single tenant is unaffected, but as tenants multiply the\n"
      "uncoordinated pools (16 readers each) push the device past its\n"
      "overload point and everyone slows down. The coordinated control\n"
      "plane caps the total at the device's sweet spot and splits it\n"
      "fairly — the system-wide visibility argument of §II.\n");
  return 0;
}
