// Figure 2 reproduction: average training time of TensorFlow (baseline /
// optimized) vs PRISMA for LeNet, AlexNet, and ResNet-50 with batch sizes
// {64, 128, 256}; ImageNet, 10 epochs, 4 GPUs, avg ± stddev over 5 seeds.
//
// Also prints the §V.A headline numbers next to the paper's reference
// values (absolute numbers are a simulator estimate; the claim under test
// is the *shape* — who wins and by roughly what factor).
//
// Environment: PRISMA_BENCH_SCALE (default 100), PRISMA_BENCH_RUNS (5).
#include <cstdio>
#include <vector>

#include "bench_util.hpp"

using namespace prisma;
using namespace prisma::bench;
using namespace prisma::baselines;

namespace {

struct PaperRef {
  // Paper-quoted training times (s) where §V.A gives them; -1 otherwise.
  double baseline = -1, optimized = -1, prisma = -1;
};

PaperRef RefFor(const std::string& model, std::size_t batch) {
  // §V.A quotes LeNet bs64 and bs256 directly; baselines derived from the
  // quoted reduction percentages (51%/55% @64, 54%/67% @256).
  if (model == "lenet" && batch == 64) return {4177, 1851, 2047};
  if (model == "lenet" && batch == 256) return {4087, 1363, 1880};
  return {};
}

}  // namespace

int main() {
  const std::size_t scale = BenchScale();
  const int runs = BenchRuns();

  PrintHeader("Figure 2 — TensorFlow: baseline vs TF-optimized vs PRISMA");
  std::printf("dataset = ImageNet/%zu (%s), epochs = 10, 4 GPUs, %d runs\n",
              scale, scale == 1 ? "full" : "scaled", runs);
  std::printf("times below are full-scale estimates in seconds (avg ± std)\n");

  const std::vector<sim::ModelProfile> models = {
      sim::ModelProfile::LeNet(), sim::ModelProfile::AlexNet(),
      sim::ModelProfile::ResNet50()};
  const std::vector<std::size_t> batches = {64, 128, 256};

  for (const auto& model : models) {
    PrintRule();
    std::printf("%-10s %5s | %13s | %22s | %22s\n", model.name.c_str(), "batch",
                "TF baseline", "TF optimized", "PRISMA");
    for (const std::size_t batch : batches) {
      ExperimentConfig cfg;
      cfg.model = model;
      cfg.global_batch = batch;
      cfg.scale = scale;

      const Summary base = RunSeeds(cfg, runs, RunTfBaseline);
      const Summary opt = RunSeeds(cfg, runs, RunTfOptimized);
      const Summary prisma = RunSeeds(cfg, runs, RunPrismaTf);

      std::printf(
          "%-10s %5zu | %8.0f ±%3.0f | %8.0f ±%3.0f (-%4.1f%%) | %8.0f ±%3.0f "
          "(-%4.1f%%)\n",
          "", batch, base.mean_s, base.stddev_s, opt.mean_s, opt.stddev_s,
          ReductionPct(opt.mean_s, base.mean_s), prisma.mean_s,
          prisma.stddev_s, ReductionPct(prisma.mean_s, base.mean_s));

      const PaperRef ref = RefFor(model.name, batch);
      if (ref.baseline > 0) {
        std::printf(
            "%-10s %5s | paper:  %5.0f |          %5.0f (-%4.1f%%) |          "
            "%5.0f (-%4.1f%%)\n",
            "", "", ref.baseline, ref.optimized,
            ReductionPct(ref.optimized, ref.baseline), ref.prisma,
            ReductionPct(ref.prisma, ref.baseline));
      }
    }
  }

  PrintRule();
  std::printf(
      "expected shape (paper §V.A):\n"
      "  * LeNet:    PRISMA and TF-optimized cut >50%% off baseline;\n"
      "              TF-optimized pulls further ahead as batch grows\n"
      "              (PRISMA does not prefetch validation files).\n"
      "  * AlexNet:  both optimized setups cut >=20%% off baseline.\n"
      "  * ResNet50: compute-bound — no setup changes training time.\n");
  return 0;
}
