// §VII experiment — distributed training on shared storage.
//
// N compute nodes, each training through its own PRISMA stage against ONE
// parallel-FS backend that overloads past 16 concurrent reads. Compares
// the three control regimes of baselines::DistributedControlMode and
// prints per-mode makespan, per-node fairness, and device pressure.
#include <cmath>
#include <cstdio>

#include "baselines/distributed.hpp"
#include "bench_util.hpp"

using namespace prisma;
using namespace prisma::bench;
using namespace prisma::baselines;

namespace {

const char* ModeName(DistributedControlMode m) {
  switch (m) {
    case DistributedControlMode::kGreedy: return "greedy (framework-style)";
    case DistributedControlMode::kIndependent: return "independent tuners";
    case DistributedControlMode::kCoordinated: return "coordinated (SDS)";
  }
  return "?";
}

double Stddev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  double mean = 0;
  for (const double x : xs) mean += x;
  mean /= static_cast<double>(xs.size());
  double var = 0;
  for (const double x : xs) var += (x - mean) * (x - mean);
  return std::sqrt(var / static_cast<double>(xs.size() - 1));
}

}  // namespace

int main() {
  PrintHeader("Distributed training — N nodes, one shared parallel FS");
  std::printf("LeNet, 2 epochs/node, ImageNet/100 slice per node; device\n");
  std::printf("overloads past 16 concurrent reads; budget = 16 producers\n");

  for (const std::size_t nodes : {1ul, 2ul, 4ul, 8ul}) {
    PrintRule();
    std::printf("nodes = %zu\n", nodes);
    double greedy_makespan = 0.0;
    for (const auto mode : {DistributedControlMode::kGreedy,
                            DistributedControlMode::kIndependent,
                            DistributedControlMode::kCoordinated}) {
      DistributedConfig cfg;
      cfg.nodes = nodes;
      cfg.mode = mode;
      cfg.global_producer_budget = 16;
      cfg.scale = 100;  // 12.8k files per node per epoch
      cfg.epochs = 2;
      // Framework startup is identical across regimes; shrink it so the
      // table reads as steady-state training behaviour.
      cfg.costs.framework_startup = Seconds{2};
      const auto r = RunDistributed(cfg);

      std::string producers;
      for (const auto p : r.final_producers) {
        producers += std::to_string(p) + " ";
      }
      std::printf(
          "  %-26s makespan %7.1f s | node-stddev %5.1f s | device "
          "conc mean %5.1f max %3ld | t = [ %s]\n",
          ModeName(mode), r.makespan_s, Stddev(r.node_elapsed_s),
          r.mean_device_concurrency,
          static_cast<long>(r.max_device_concurrency), producers.c_str());
      if (mode == DistributedControlMode::kGreedy) {
        greedy_makespan = r.makespan_s;
      } else if (mode == DistributedControlMode::kCoordinated &&
                 greedy_makespan > 0) {
        std::printf("  -> coordinated vs greedy: %.1f%% faster makespan\n",
                    ReductionPct(r.makespan_s, greedy_makespan));
      }
    }
  }

  PrintRule();
  std::printf(
      "reading: with one node all three regimes roughly coincide. As nodes\n"
      "multiply, greedy pools (16 readers/node) drive the shared device deep\n"
      "into overload and makespan explodes. Independent PRISMA tuners do\n"
      "remarkably well — each observes the *shared* plateau through its own\n"
      "probes and backs off — because all jobs here are symmetric. The\n"
      "coordinated control plane matches them while *guaranteeing* the cap\n"
      "and the split: with heterogeneous or adversarial tenants only the\n"
      "global budget keeps the device at its sweet spot (see\n"
      "ablation_multitenant for the asymmetric case) — §VII's\n"
      "distributed-stage direction.\n");
  return 0;
}
