// prisma_sim — config-driven experiment runner.
//
// Usage:
//   prisma_sim [config-file] [key=value ...]
//
// Later key=value arguments override the file; with no arguments a
// default prisma_tf/LeNet experiment runs. Keys are documented in
// src/baselines/cli_config.hpp; sample files live in configs/.
//
// Examples:
//   prisma_sim configs/fig2_lenet.cfg
//   prisma_sim pipeline=torch workers=8 model=alexnet runs=3
//   prisma_sim configs/fig2_lenet.cfg scale=50 epochs=5
#include <cstdio>
#include <cstring>
#include <string>

#include "baselines/cli_config.hpp"
#include "common/stats.hpp"

using namespace prisma;
using namespace prisma::baselines;

int main(int argc, char** argv) {
  Config config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-h" || arg == "--help") {
      std::printf(
          "usage: %s [config-file] [key=value ...]\n"
          "keys: pipeline model batch epochs scale seed runs workers\n"
          "      validation page_cache fixed_producers fixed_buffer\n",
          argv[0]);
      return 0;
    }
    const std::size_t eq = arg.find('=');
    if (eq == std::string::npos) {
      auto loaded = Config::FromFile(arg);
      if (!loaded.ok()) {
        std::fprintf(stderr, "cannot load %s: %s\n", arg.c_str(),
                     loaded.status().ToString().c_str());
        return 1;
      }
      for (const auto& [k, v] : loaded->entries()) config.Set(k, v);
    } else {
      config.Set(arg.substr(0, eq), arg.substr(eq + 1));
    }
  }

  auto experiment = ParseExperiment(config);
  if (!experiment.ok()) {
    std::fprintf(stderr, "bad configuration: %s\n",
                 experiment.status().ToString().c_str());
    return 1;
  }

  std::printf(
      "pipeline=%s model=%s batch=%zu epochs=%zu scale=%zu runs=%d%s\n",
      std::string(PipelineName(experiment->pipeline)).c_str(),
      experiment->config.model.name.c_str(), experiment->config.global_batch,
      experiment->config.epochs, experiment->config.scale, experiment->runs,
      (experiment->pipeline == PipelineKind::kTorch ||
       experiment->pipeline == PipelineKind::kPrismaTorch)
          ? (" workers=" + std::to_string(experiment->workers)).c_str()
          : "");

  RunningStats stats;
  RunResult last;
  for (int run = 0; run < experiment->runs; ++run) {
    last = RunOnce(*experiment, run);
    stats.Add(last.full_scale_estimate_s);
    std::printf("  run %d: %.1f s (full-scale est %.0f s)\n", run,
                last.elapsed_s, last.full_scale_estimate_s);
  }

  std::printf(
      "result: %.0f s avg full-scale estimate (±%.0f over %d runs), "
      "%llu samples/run",
      stats.Mean(), stats.StdDev(), experiment->runs,
      static_cast<unsigned long long>(last.samples_trained));
  if (last.final_producers > 0) {
    std::printf(", auto-tuned t=%u N=%zu", last.final_producers,
                last.final_buffer);
  }
  std::printf("\n");
  return 0;
}
