// prisma-lint driver: file collection (compile_commands.json plus a
// header glob, or an explicit list), the two-pass index/lint run, and
// baseline filtering. Exposed as a library so the fixture tests and the
// self-lint test drive the exact code path the CLI uses.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "analysis.hpp"

namespace prisma_lint {

struct Options {
  std::string root;                  // repo root; "" = no root filtering
  std::string compdb;                // compile_commands.json path ("" = none)
  std::string baseline;              // baseline file path ("" = none)
  std::vector<std::string> checks;   // empty = all
  std::vector<std::string> targets;  // files to lint; empty = every indexed file
  /// Extra files lexed and indexed (but not linted) so cross-TU state —
  /// Status signatures, mutex ranks, the call graph — is complete when
  /// linting a subset. Empty + no compdb: the targets index themselves.
  std::vector<std::string> index_extra;
  /// Worker threads for the per-file lex/scan and per-target lint fans.
  /// The index merge stays sequential, so results are identical for any
  /// value; 1 (the default) runs everything inline.
  int jobs = 1;
};

struct RunResult {
  std::vector<Finding> findings;    // non-baselined, sorted (file, line)
  std::size_t baselined = 0;        // findings absorbed by the baseline
  std::vector<std::string> errors;  // unreadable files etc.
  /// Dead `prisma-lint: allow(...)` markers (reported under the reserved
  /// "stale-suppression" name, sorted like findings). Only populated
  /// when every check ran (Options::checks empty) — a subset run cannot
  /// prove a marker dead.
  std::vector<Finding> stale;
  /// Baseline fingerprints with unmatched occurrences. Only populated on
  /// full runs (no explicit targets, all checks enabled): linting a file
  /// subset leaves the rest of the baseline legitimately unmatched.
  std::vector<std::string> stale_baseline;
  /// Cumulative per-check lint time (reporting order, seconds), summed
  /// across workers — wall clock of a parallel run is lower.
  std::vector<std::pair<std::string, double>> check_seconds;
};

/// Source files listed in a compile_commands.json (absolute paths,
/// deduplicated; entries under build directories are dropped).
std::vector<std::string> ReadCompileCommands(const std::string& path);

/// Recursively collects *.hpp/*.cpp/*.h/*.cc under `dir` (sorted).
std::vector<std::string> GlobSources(const std::string& dir);

RunResult Run(const Options& options);

}  // namespace prisma_lint
