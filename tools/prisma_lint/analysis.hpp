// Shared token-level analysis for prisma-lint: findings, suppression
// comments, class-body discovery, function-body discovery with lock
// liveness, and the cross-TU project index the interprocedural checks
// (no-blocking-under-lock, lock-rank-static, status-checked) consume.
//
// Everything here is approximate on purpose: the call graph is keyed by
// bare function name (the linter cannot resolve overloads or virtual
// dispatch — which is the conservative choice for `backend->Read(...)`,
// where *some* override really does block), and lock liveness follows
// MutexLock declarations, Unlock()/Lock() toggles, and brace scopes.
// False negatives are accepted (macro-hidden locks); false positives
// are silenced at the site with an explicit reasoned suppression.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "lexer.hpp"

namespace prisma_lint {

struct Finding {
  std::string file;   // as given to the driver
  int line = 0;
  std::string check;  // e.g. "no-raw-sync"
  std::string message;
  /// Set when an inline `prisma-lint: allow(...)` marker covers this
  /// site. Suppressed findings never reach the user, but the driver
  /// keeps them long enough to prove each marker still earns its keep
  /// (stale-suppression detection).
  bool suppressed = false;

  /// "file:line: [check] message" — the emitted form.
  std::string ToString() const;
  /// "basename: [check] message" — the baseline fingerprint (path dirs
  /// and line numbers stripped so refactors that move code do not churn
  /// the baseline file).
  std::string Fingerprint() const;
  /// GitHub Actions workflow-command form:
  /// "::error file=F,line=N,title=prisma-lint check::message".
  std::string ToGitHubAnnotation() const;
};

/// True when `line` (or a run of comment-only lines immediately above
/// it) carries `prisma-lint: allow(<check>...)` — or, for the
/// guarded-by-coverage check, the dedicated `prisma-lint:
/// unguarded(<reason>)` form.
bool IsSuppressed(const FileTokens& file, int line, const std::string& check);

/// Dead suppressions: every `allow(<check>)` / `unguarded(<reason>)`
/// marker in `file` that either names a check the linter does not have,
/// or covers no occurrence of its check (suppressed findings included)
/// on the line(s) it reaches. `findings` must be this file's findings
/// with Finding::suppressed still present, from a run with every check
/// enabled — the driver only calls this when that holds. Returned as
/// findings under the reserved name "stale-suppression" so they render
/// and fail the run like any other finding (they are deliberately not
/// themselves suppressible or baselinable).
std::vector<Finding> FindStaleSuppressions(
    const FileTokens& file, const std::vector<std::string>& known_checks,
    const std::vector<Finding>& findings);

// ---------------------------------------------------------------------------
// Class discovery (guarded-by-coverage, mutex-member ranks).

struct ClassInfo {
  std::string name;
  std::size_t body_begin = 0;  // token index just past '{'
  std::size_t body_end = 0;    // token index of matching '}'
  int line = 0;
};

/// All class/struct definitions in the file, innermost included.
std::vector<ClassInfo> ScanClasses(const FileTokens& file);

/// Name of the innermost class whose body contains token index `i`.
std::optional<std::string> EnclosingClass(const std::vector<ClassInfo>& classes,
                                          std::size_t i);

// ---------------------------------------------------------------------------
// Function discovery with lock liveness.

/// A MutexLock live at some site, as (mutex member name, rank).
/// rank < 0 means the rank could not be resolved.
struct HeldLock {
  std::string mutex_name;
  int rank = -1;
};

struct CallSite {
  std::string name;
  int line = 0;
  std::vector<HeldLock> held;  // locks live at the call
};

struct AcquireSite {
  std::string mutex_name;      // last identifier of the lock expression
  std::string lookup_key;      // Class::member when resolvable
  int line = 0;
  std::vector<HeldLock> held_before;
};

struct FnDef {
  std::string name;            // unqualified
  std::string class_name;      // qualifier or enclosing class ("" if free)
  std::string file;
  int line = 0;
  bool hot_path = false;       // definition carries PRISMA_HOT_PATH
  std::size_t params_begin = 0;  // token index of the parameter-list '('
  std::size_t params_end = 0;    // token index of its matching ')'
  std::size_t body_begin = 0;  // token index just past the body '{'
  std::size_t body_end = 0;    // token index of the matching '}'
  std::vector<CallSite> calls;        // every project-relevant call
  std::vector<CallSite> blocking;     // calls to the primitive blocking set
  std::vector<CallSite> allocs;       // allocation-primitive sites
  std::vector<AcquireSite> acquires;  // MutexLock construction sites

  /// Declared return type is a borrowed-view type (std::span,
  /// std::string_view, SampleView) — the precondition for the
  /// view-escape return rules and for the borrows-from-param summary.
  bool returns_view = false;
  /// Non-empty when some return statement provably returns a view of a
  /// parameter; holds the witness text ("Trim returns a view of its
  /// parameter 's'"). Seeded per definition, merged into
  /// ProjectIndex::view_param_chain and propagated to fixpoint.
  std::string view_of_param;
  /// Callees appearing as `return Callee(...args containing a param...)`
  /// in a view-returning body: if the callee turns out to borrow from
  /// its parameter, this definition transitively does too.
  std::vector<std::string> view_return_param_calls;
};

/// Whether a callee name may be resolved through the name-keyed
/// cross-TU graph. Project methods are CamelCase, so lowercase names
/// (size, empty, find, ...) are far more likely to be STL container
/// calls than calls to a same-named project function — resolving them
/// drowns every `vec.size()` in whatever a project `size()` does.
bool CrossTuResolvable(const std::string& name);

// ---------------------------------------------------------------------------
// Cross-TU project index.

struct ProjectIndex {
  /// LockRank enumerator -> numeric value, parsed from the (single)
  /// `enum class LockRank` definition in the indexed set.
  std::map<std::string, int> rank_values;

  /// Mutex declaration -> rank. Keyed twice: "Class::member" and, when
  /// unambiguous across the project, the bare member name.
  std::unordered_map<std::string, int> mutex_ranks;
  std::unordered_set<std::string> ambiguous_mutex_names;

  /// Raw declarations collected during indexing (key -> LockRank
  /// enumerator names seen); resolved to mutex_ranks by FinalizeIndex,
  /// since the enum definition may be indexed after its uses.
  std::unordered_map<std::string, std::vector<std::string>> raw_mutex_decls;

  /// Functions whose declared return type is Status or Result<...>.
  /// Names that ALSO appear with a non-Status return type anywhere in
  /// the project (e.g. BoundedQueue::TryPush returns Status but
  /// SpscRing::TryPush returns bool) are removed by FinalizeIndex —
  /// a name-keyed check must only fire when every overload agrees.
  std::unordered_set<std::string> status_fns;
  std::unordered_set<std::string> nonstatus_fns;

  /// Every function definition, keyed by unqualified name (merging
  /// overloads and same-named methods — see file comment).
  std::unordered_map<std::string, std::vector<FnDef>> fns;

  /// Blocking closure: function name -> witness chain ending in a
  /// primitive blocking call, e.g. "FileSize -> stat". Seeded by the
  /// primitive set, propagated through the call graph to a fixpoint.
  std::unordered_map<std::string, std::string> blocking_chain;

  /// Allocation closure: function name -> witness chain ending in an
  /// allocation primitive, e.g. "Take -> RefillSlow -> operator new".
  /// Seeded and propagated exactly like blocking_chain.
  std::unordered_map<std::string, std::string> alloc_chain;

  /// Names with at least one PRISMA_HOT_PATH definition. hot-path-purity
  /// trusts calls to these: the callee is audited (and suppressed where
  /// deliberate) at its own definition.
  std::unordered_set<std::string> hot_fns;

  /// Borrow closure: view-returning function name -> witness that a
  /// call's result borrows from one of its arguments, e.g.
  /// "Window returns a view of its parameter 'bytes'" or, through a
  /// helper, "Header -> Window returns a view of its parameter 'bytes'".
  /// Seeded from FnDef::view_of_param and propagated through
  /// FnDef::view_return_param_calls exactly like alloc_chain.
  std::unordered_map<std::string, std::string> view_param_chain;

  /// Effective acquisitions: function name -> (rank -> witness chain),
  /// the ranks a call to this function may end up acquiring.
  std::unordered_map<std::string, std::map<int, std::string>> effective_ranks;

  int RankOf(const std::string& key, const std::string& bare_name) const;
};

/// The primitive blocking set (syscalls / std waits that must not run
/// under a prisma::Mutex). Exposed for tests and docs.
const std::unordered_set<std::string>& BlockingPrimitives();

/// Allocation primitives called like free functions (malloc family,
/// make_shared/make_unique). `operator new` is recognized by keyword.
const std::unordered_set<std::string>& AllocationPrimitives();

/// Growth methods on containers/strings that may allocate; they only
/// count as allocation sites when invoked through `.` or `->`.
const std::unordered_set<std::string>& GrowthMethods();

// ---------------------------------------------------------------------------
// Payload-copy tracking (no-payload-copy).

/// Heavy payload types whose copies the no-payload-copy check flags.
/// `std::vector<std::byte>` (payload buffers) is matched structurally in
/// addition to these single-identifier names.
const std::unordered_set<std::string>& HeavyPayloadTypes();

/// One flagged copy of a heavy payload type.
struct PayloadCopy {
  std::string type;  // e.g. "SamplePayload", "std::vector<std::byte>"
  std::string what;  // e.g. "by-value parameter 'sample'"
  int line = 0;
};

/// Scope-level declared-type tracker: walks each function's parameter
/// list and body tracking which names hold heavy payload types, and
/// reports by-value parameters, copy-initialization from an lvalue
/// (including by-value range-for loop variables), and lambda
/// capture-by-copy of a tracked heavy variable.
std::vector<PayloadCopy> FindPayloadCopies(const FileTokens& file,
                                           const std::vector<FnDef>& fns);

// ---------------------------------------------------------------------------
// Lifetime & escape analysis (view-escape, use-after-move).

/// Owner types whose storage a borrowed view may point into. A view
/// rooted in a function-local owner dies with the frame.
/// `std::vector<std::byte>` (pool buffers) is matched structurally.
const std::unordered_set<std::string>& ViewOwnerTypes();

/// Accessor methods that derive a borrowed view from an owner or from
/// another view (`payload.span()`, `buf.data()`, `sv.substr(...)`).
const std::unordered_set<std::string>& BorrowAccessors();

/// Deferred-execution sinks: a lambda passed to one of these may run
/// after the enclosing frame is gone (ThreadPool::Submit,
/// BoundedQueue::Push/TryPush, std::thread, stored-callback pushes).
const std::unordered_set<std::string>& DeferredSinks();

/// One escape of a borrowed view past its owner's lifetime.
struct ViewEscape {
  std::string what;  // rendered clause, including any witness chain
  int line = 0;
};

/// Interprocedural borrow tracker: walks each function tracking
/// view-typed declarations and their roots (local owner, parameter, or
/// unknown), consults `index.view_param_chain` so borrows through
/// helper calls resolve with a witness chain, and reports (a) returning
/// a view rooted in a function-local owner, (b) storing a borrowed view
/// into a member or member container, and (c) lambda captures of views
/// handed to a deferred-execution sink.
std::vector<ViewEscape> FindViewEscapes(const FileTokens& file,
                                        const std::vector<ClassInfo>& classes,
                                        const std::vector<FnDef>& fns,
                                        const ProjectIndex& index);

/// Types with scope-level moved-from tracking (use-after-move).
/// `std::vector<std::byte>` is matched structurally in addition.
const std::unordered_set<std::string>& MoveTrackedTypes();

/// One use of a moved-from value.
struct MovedUse {
  std::string what;
  int line = 0;
};

/// Flags any use of a tracked local/parameter after `std::move(var)`
/// other than reassignment or `reset()`/`clear()`. Conservatively
/// forgets the moved-from state when the scope containing the move
/// closes, so a move inside one branch never taints the join point.
std::vector<MovedUse> FindUseAfterMove(const FileTokens& file,
                                       const std::vector<FnDef>& fns);

/// Scans one file's token stream into function definitions (with lock
/// liveness resolved against `index` when provided for ranks) plus the
/// file-local contributions to the index. Used in two passes: pass 1
/// builds the index from every file; pass 2 re-scans target files with
/// the full index available so held-lock ranks resolve.
std::vector<FnDef> ScanFunctions(const FileTokens& file,
                                 const std::vector<ClassInfo>& classes,
                                 const ProjectIndex* index);

/// Collects declarations into the index: LockRank enum values, Mutex
/// member ranks, Status/Result-returning function names.
void IndexDeclarations(const FileTokens& file,
                       const std::vector<ClassInfo>& classes,
                       ProjectIndex& index);

/// Finalizes derived state (bare-name mutex ranks, blocking closure,
/// effective rank sets) once every file has been indexed.
void FinalizeIndex(ProjectIndex& index);

// Token helpers shared by checks.
bool IsKeyword(const std::string& s);
std::size_t MatchForward(const std::vector<Token>& t, std::size_t open);

}  // namespace prisma_lint
