#include "analysis.hpp"

#include <algorithm>
#include <cstdlib>

namespace prisma_lint {
namespace {

using Kind = Token::Kind;

std::string Trim(std::string s) {
  const auto b = s.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  const auto e = s.find_last_not_of(" \t");
  return s.substr(b, e - b + 1);
}

/// True when `comment` carries a suppression for `check`:
///   prisma-lint: allow(<check>[, reason])
///   prisma-lint: unguarded(<reason>)        (guarded-by-coverage only)
bool HasMarker(const std::string& comment, const std::string& check) {
  std::size_t p = comment.find("prisma-lint:");
  if (p == std::string::npos) return false;
  const std::string rest = comment.substr(p + 12);
  for (std::size_t a = rest.find("allow("); a != std::string::npos;
       a = rest.find("allow(", a + 1)) {
    const std::string inner = rest.substr(a + 6);
    const std::size_t e = inner.find_first_of(",)");
    const std::string name = Trim(inner.substr(0, e));
    if (name == check || name == "all") return true;
  }
  if (check == "guarded-by-coverage" &&
      rest.find("unguarded(") != std::string::npos) {
    return true;
  }
  return false;
}

}  // namespace

std::string Finding::ToString() const {
  return file + ":" + std::to_string(line) + ": [" + check + "] " + message;
}

std::string Finding::Fingerprint() const {
  const std::size_t slash = file.find_last_of('/');
  const std::string base =
      slash == std::string::npos ? file : file.substr(slash + 1);
  return base + ": [" + check + "] " + message;
}

bool IsSuppressed(const FileTokens& file, int line, const std::string& check) {
  if (HasMarker(file.CommentAt(line), check)) return true;
  // A suppression may sit on its own line (or a short run of comment
  // lines) immediately above the flagged statement.
  for (int l = line - 1; l > 0 && file.comment_only_lines.count(l); --l) {
    if (HasMarker(file.CommentAt(l), check)) return true;
  }
  return false;
}

bool IsKeyword(const std::string& s) {
  static const std::unordered_set<std::string> kKeywords = {
      "if",       "else",     "for",       "while",    "do",
      "switch",   "case",     "default",   "return",   "break",
      "continue", "goto",     "new",       "delete",   "sizeof",
      "alignof",  "alignas",  "static_assert",         "using",
      "namespace","template", "typename",  "class",    "struct",
      "enum",     "union",    "public",    "private",  "protected",
      "virtual",  "override", "final",     "const",    "constexpr",
      "consteval","constinit","static",    "inline",   "friend",
      "typedef",  "operator", "this",      "true",     "false",
      "nullptr",  "try",      "catch",     "throw",    "co_await",
      "co_return","co_yield", "decltype",  "noexcept", "auto",
      "void",     "int",      "char",      "short",    "long",
      "float",    "double",   "bool",      "unsigned", "signed",
      "wchar_t",  "reinterpret_cast",      "static_cast",
      "dynamic_cast",         "const_cast","extern",   "register",
      "volatile", "mutable",  "explicit",  "export",   "requires",
      "concept",  "asm",      "defined",
  };
  return kKeywords.count(s) != 0;
}

bool CrossTuResolvable(const std::string& name) {
  return !name.empty() && name[0] >= 'A' && name[0] <= 'Z';
}

std::size_t MatchForward(const std::vector<Token>& t, std::size_t open) {
  const std::string& o = t[open].text;
  const std::string c = o == "(" ? ")" : o == "{" ? "}" : "]";
  int depth = 0;
  for (std::size_t i = open; i < t.size(); ++i) {
    if (t[i].text == o) {
      ++depth;
    } else if (t[i].text == c) {
      if (--depth == 0) return i;
    }
  }
  return t.size() - 1;  // unbalanced; clamp to EOF
}

// ---------------------------------------------------------------------------
// Class discovery.

std::vector<ClassInfo> ScanClasses(const FileTokens& file) {
  const auto& t = file.tokens;
  std::vector<ClassInfo> out;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != Kind::kIdent) continue;
    if (t[i].text == "enum") {
      // Skip the whole enum: `enum class X : int { ... }` would
      // otherwise read as a class definition named X.
      std::size_t j = i + 1;
      while (j < t.size() && t[j].text != "{" && t[j].text != ";") ++j;
      if (j < t.size() && t[j].text == "{") j = MatchForward(t, j);
      i = j;
      continue;
    }
    if (t[i].text != "class" && t[i].text != "struct") continue;
    std::string name;
    std::size_t j = i + 1;
    bool is_def = false;
    while (j < t.size()) {
      const Token& u = t[j];
      if (u.text == ";" || u.text == ")" || u.text == ">" || u.text == "," ||
          u.text == "*" || u.text == "&") {
        break;  // forward declaration or elaborated type use
      }
      if (u.text == "{") {
        is_def = true;
        break;
      }
      if (u.text == ":") {
        // Base clause: the name is settled; find the body brace.
        while (j < t.size() && t[j].text != "{" && t[j].text != ";") ++j;
        is_def = j < t.size() && t[j].text == "{";
        break;
      }
      if (u.text == "[") {  // [[attribute]]
        j = MatchForward(t, j) + 1;
        continue;
      }
      if (u.kind == Kind::kIdent) {
        if (u.text == "final") {
          ++j;
          continue;
        }
        // An identifier followed by a paren group is an attribute macro
        // (CAPABILITY("mutex")), not the class name.
        if (j + 1 < t.size() && t[j + 1].text == "(") {
          j = MatchForward(t, j + 1) + 1;
          continue;
        }
        if (!name.empty()) {
          // Two plain identifiers: `struct stat st{};` — a variable
          // declaration with an elaborated type, not a definition.
          name.clear();
          break;
        }
        name = u.text;
        ++j;
        continue;
      }
      ++j;
    }
    if (!is_def || name.empty()) continue;
    ClassInfo ci;
    ci.name = name;
    ci.line = t[i].line;
    ci.body_begin = j + 1;
    ci.body_end = MatchForward(t, j);
    out.push_back(ci);
    // Keep scanning inside the body so nested classes are found too.
  }
  return out;
}

std::optional<std::string> EnclosingClass(const std::vector<ClassInfo>& classes,
                                          std::size_t i) {
  const ClassInfo* best = nullptr;
  for (const auto& c : classes) {
    if (c.body_begin <= i && i < c.body_end) {
      if (!best || (c.body_end - c.body_begin) < (best->body_end - best->body_begin)) {
        best = &c;
      }
    }
  }
  if (!best) return std::nullopt;
  return best->name;
}

// ---------------------------------------------------------------------------
// Function discovery with lock liveness.

const std::unordered_set<std::string>& BlockingPrimitives() {
  static const std::unordered_set<std::string> kBlocking = {
      // Syscall-level I/O and waits.
      "read", "write", "pread", "pwrite", "readv", "writev", "preadv",
      "pwritev", "recv", "send", "recvfrom", "sendto", "recvmsg", "sendmsg",
      "accept", "accept4", "connect", "poll", "ppoll", "select", "epoll_wait",
      "open", "openat", "fsync", "fdatasync", "stat", "fstat", "lstat",
      "unlink", "rename", "ftruncate",
      // libc stream I/O.
      "fopen", "fread", "fwrite", "fgets", "fflush", "getline",
      // Sleeps and thread joins.
      "sleep", "usleep", "nanosleep", "sleep_for", "sleep_until", "join",
      // C++ file streams (flagged at construction).
      "ifstream", "ofstream", "fstream",
      // Process spawning.
      "system", "popen",
  };
  return kBlocking;
}

const std::unordered_set<std::string>& AllocationPrimitives() {
  static const std::unordered_set<std::string> kAlloc = {
      "malloc", "calloc", "realloc", "strdup", "strndup", "aligned_alloc",
      "posix_memalign", "make_shared", "make_unique",
      "make_shared_for_overwrite", "make_unique_for_overwrite",
  };
  return kAlloc;
}

const std::unordered_set<std::string>& GrowthMethods() {
  static const std::unordered_set<std::string> kGrowth = {
      "push_back", "emplace_back", "push_front", "emplace_front",
      "resize",    "reserve",      "insert",     "emplace",
      "try_emplace", "append",
  };
  return kGrowth;
}

namespace {

bool IsLambdaStart(const std::vector<Token>& t, std::size_t k) {
  if (t[k].text != "[") return false;
  if (k == 0) return true;
  const Token& p = t[k - 1];
  if (p.kind == Kind::kIdent && !IsKeyword(p.text)) return false;  // subscript
  if (p.kind == Kind::kNumber || p.kind == Kind::kString) return false;
  if (p.text == ")" || p.text == "]") return false;
  return true;
}

struct LiveLock {
  std::string var;
  std::string mutex_name;
  std::string key;
  int rank = -1;
  int depth = 0;
  bool held = true;
};

std::vector<HeldLock> Held(const std::vector<LiveLock>& locks) {
  std::vector<HeldLock> out;
  for (const auto& l : locks) {
    if (l.held) out.push_back({l.mutex_name, l.rank});
  }
  return out;
}

/// True when the expression starting at `p` is "call-like": a
/// (possibly qualified) name directly applied to arguments — a prvalue
/// the initialization moves from, not an lvalue it copies. Covers
/// `std::move(x)`, `Foo(...)`, `obj.Make(...)` is NOT matched (the
/// leading ident is followed by '.'), which is the conservative side.
bool StartsCallLike(const std::vector<Token>& t, std::size_t p,
                    std::size_t end) {
  while (p < end &&
         (t[p].kind == Kind::kIdent || t[p].text == "::" ||
          t[p].text == "<" || t[p].text == ">")) {
    if (t[p].kind == Kind::kIdent && p + 1 < end && t[p + 1].text == "(") {
      return true;
    }
    ++p;
  }
  return false;
}

/// Skips a balanced `<...>` template-argument run starting at `n`
/// (which must be '<'); returns the index just past the closing '>'.
std::size_t SkipAngles(const std::vector<Token>& t, std::size_t n,
                       std::size_t end) {
  int d = 0;
  for (; n < end; ++n) {
    if (t[n].text == "<") {
      ++d;
    } else if (t[n].text == ">") {
      if (--d == 0) return n + 1;
    } else if (t[n].text == ">>") {
      d -= 2;
      if (d <= 0) return n + 1;
    } else if (t[n].text == ";" || t[n].text == "{") {
      break;  // not template arguments after all
    }
  }
  return n;
}

void AnalyzeBody(const std::vector<Token>& t, std::size_t begin,
                 std::size_t end, const ProjectIndex* index, FnDef& def) {
  std::vector<LiveLock> locks;
  int depth = 0;
  for (std::size_t k = begin; k < end; ++k) {
    const Token& tok = t[k];
    if (tok.text == "{") {
      ++depth;
      continue;
    }
    if (tok.text == "}") {
      --depth;
      std::erase_if(locks, [depth](const LiveLock& l) { return l.depth > depth; });
      continue;
    }
    // Lambda bodies are deferred code: they may run on another thread or
    // after the lock is gone, so their contents neither inherit the
    // current lock set nor contribute to this function's call/blocking
    // profile. (Token-global checks still see them.)
    if (IsLambdaStart(t, k)) {
      std::size_t e = MatchForward(t, k);
      std::size_t j = e + 1;
      if (j < end && t[j].text == "(") j = MatchForward(t, j) + 1;
      while (j < end &&
             (t[j].kind == Kind::kIdent || t[j].text == "->" ||
              t[j].text == "::" || t[j].text == "<" || t[j].text == ">" ||
              t[j].text == "*" || t[j].text == "&")) {
        ++j;
      }
      k = (j < end && t[j].text == "{") ? MatchForward(t, j) : e;
      continue;
    }
    if (tok.kind != Kind::kIdent) continue;

    // MutexLock declaration: `MutexLock lock(mu_);` / `{shard->mu}`.
    if (tok.text == "MutexLock" && k + 2 < end &&
        t[k + 1].kind == Kind::kIdent &&
        (t[k + 2].text == "(" || t[k + 2].text == "{")) {
      const std::size_t open = k + 2;
      const std::size_t close = MatchForward(t, open);
      std::string mname;
      std::size_t ident_count = 0;
      for (std::size_t q = open + 1; q < close; ++q) {
        if (t[q].kind == Kind::kIdent) {
          mname = t[q].text;
          ++ident_count;
        }
      }
      std::string key;
      if (ident_count == 1 && !def.class_name.empty()) {
        key = def.class_name + "::" + mname;  // bare member of this class
      }
      AcquireSite site;
      site.mutex_name = mname;
      site.lookup_key = key;
      site.line = tok.line;
      site.held_before = Held(locks);
      def.acquires.push_back(site);
      const int rank = index ? index->RankOf(key, mname) : -1;
      locks.push_back({t[k + 1].text, mname, key, rank, depth, true});
      k = close;
      continue;
    }
    // Relock/unlock toggles on a tracked MutexLock variable.
    if (k + 2 < end && t[k + 1].text == "." && t[k + 2].kind == Kind::kIdent &&
        (t[k + 2].text == "Unlock" || t[k + 2].text == "Lock")) {
      for (auto it = locks.rbegin(); it != locks.rend(); ++it) {
        if (it->var == tok.text) {
          it->held = t[k + 2].text == "Lock";
          break;
        }
      }
      k += 2;
      continue;
    }
    // Blocking primitives: `::read(...)`, `stream.read(...)`, and
    // stream construction `std::ifstream in(path)`.
    if (BlockingPrimitives().count(tok.text) != 0 && k + 1 < end &&
        (t[k + 1].text == "(" || t[k + 1].kind == Kind::kIdent)) {
      CallSite site{tok.text, tok.line, Held(locks)};
      def.blocking.push_back(site);
      continue;
    }
    // Allocation sites (hot-path-purity): operator new, the malloc /
    // make_* family, growth calls on containers, and std::string /
    // std::function construction.
    if (tok.text == "new") {
      def.allocs.push_back({"operator new", tok.line, Held(locks)});
      continue;
    }
    if (AllocationPrimitives().count(tok.text) != 0 && k + 1 < end &&
        (t[k + 1].text == "(" || t[k + 1].text == "<")) {
      def.allocs.push_back({tok.text, tok.line, Held(locks)});
      continue;
    }
    if (GrowthMethods().count(tok.text) != 0 && k > begin &&
        (t[k - 1].text == "." || t[k - 1].text == "->") && k + 1 < end &&
        t[k + 1].text == "(") {
      def.allocs.push_back({tok.text, tok.line, Held(locks)});
      continue;
    }
    if ((tok.text == "string" || tok.text == "function") && k >= 2 &&
        t[k - 1].text == "::" && t[k - 2].text == "std") {
      std::size_t n = k + 1;
      if (n < end && t[n].text == "<") n = SkipAngles(t, n, end);
      bool constructs = false;
      if (n < end && t[n].kind == Kind::kIdent && !IsKeyword(t[n].text)) {
        // Declaration `std::string name ...`: only an initializer that
        // is not a move-from-prvalue allocates (`std::string s;` is SSO,
        // `= std::move(x)` / `= Render(...)` are moves).
        const std::size_t v = n + 1;
        if (v + 1 < end && (t[v].text == "(" || t[v].text == "{")) {
          constructs = t[v + 1].text != ")" && t[v + 1].text != "}";
        } else if (v < end && t[v].text == "=") {
          constructs = !StartsCallLike(t, v + 1, end);
        }
      } else if (n + 1 < end && (t[n].text == "(" || t[n].text == "{")) {
        // Temporary `std::string(...)`.
        constructs = t[n + 1].text != ")" && t[n + 1].text != "}";
      }
      if (constructs) {
        def.allocs.push_back(
            {"std::" + tok.text + " construction", tok.line, Held(locks)});
      }
      continue;
    }
    // Ordinary calls: project-graph edges with the live lock set.
    if (k + 1 < end && t[k + 1].text == "(" && !IsKeyword(tok.text) &&
        tok.text != "MutexLock") {
      def.calls.push_back({tok.text, tok.line, Held(locks)});
      continue;
    }
  }
}

}  // namespace

std::vector<FnDef> ScanFunctions(const FileTokens& file,
                                 const std::vector<ClassInfo>& classes,
                                 const ProjectIndex* index) {
  const auto& t = file.tokens;
  std::vector<FnDef> out;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].kind != Kind::kIdent || IsKeyword(t[i].text)) continue;
    if (t[i + 1].text != "(") continue;
    const std::size_t close = MatchForward(t, i + 1);
    if (close + 1 >= t.size()) continue;

    // Decide definition vs. call/declaration: walk the tokens between
    // the parameter list and a possible body brace. Qualifiers,
    // annotation macros (REQUIRES(mu_) ...), trailing return types and
    // constructor init lists are stepped over; anything else means this
    // was an expression.
    std::size_t j = close + 1;
    bool is_def = false;
    while (j < t.size()) {
      const std::string& s = t[j].text;
      if (s == "{") {
        is_def = true;
        break;
      }
      if (s == ";" || s == "," || s == ")" || s == "]" || s == "}" ||
          s == "=") {
        break;
      }
      if (s == ":") {
        // Constructor init list: ident + group, comma-separated, then
        // the body brace.
        ++j;
        while (j < t.size()) {
          while (j < t.size() &&
                 (t[j].kind == Kind::kIdent || t[j].text == "::" ||
                  t[j].text == "<" || t[j].text == ">" || t[j].text == ",")) {
            ++j;
          }
          if (j >= t.size() || (t[j].text != "(" && t[j].text != "{")) break;
          const std::size_t e = MatchForward(t, j);
          j = e + 1;
          if (j < t.size() && t[j].text == ",") {
            ++j;
            continue;
          }
          break;
        }
        if (j < t.size() && t[j].text == "{") is_def = true;
        break;
      }
      if (t[j].kind == Kind::kIdent) {
        ++j;
        if (j < t.size() && t[j].text == "(") j = MatchForward(t, j) + 1;
        continue;
      }
      if (s == "->" || s == "::" || s == "<" || s == ">" || s == ">>" ||
          s == "*" || s == "&" || s == "&&" || s == "[") {
        j = (s == "[") ? MatchForward(t, j) + 1 : j + 1;
        continue;
      }
      break;
    }
    if (!is_def) continue;

    FnDef def;
    def.name = t[i].text;
    def.file = file.path;
    def.line = t[i].line;
    def.params_begin = i + 1;
    def.params_end = close;
    // PRISMA_HOT_PATH annotation: the attribute macro sits in the
    // declaration prefix, between the previous statement/brace boundary
    // and the function name (the lexer drops its #define, so the marker
    // survives as a plain identifier).
    for (std::size_t b = i; b-- > 0;) {
      const std::string& prefix = t[b].text;
      if (prefix == ";" || prefix == "{" || prefix == "}") break;
      if (prefix == "PRISMA_HOT_PATH") {
        def.hot_path = true;
        break;
      }
    }
    if (i >= 2 && t[i - 1].text == "::" && t[i - 2].kind == Kind::kIdent) {
      def.class_name = t[i - 2].text;
    } else if (auto cls = EnclosingClass(classes, i)) {
      def.class_name = *cls;
    }
    const std::size_t body_end = MatchForward(t, j);
    def.body_begin = j + 1;
    def.body_end = body_end;
    AnalyzeBody(t, j + 1, body_end, index, def);
    out.push_back(std::move(def));
    i = body_end;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Index construction.

void IndexDeclarations(const FileTokens& file,
                       const std::vector<ClassInfo>& classes,
                       ProjectIndex& index) {
  const auto& t = file.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != Kind::kIdent) continue;
    const std::string& s = t[i].text;

    // `enum class LockRank { kLeaf = 1, ... }` — the rank table.
    if (s == "enum") {
      std::size_t j = i + 1;
      if (j < t.size() && (t[j].text == "class" || t[j].text == "struct")) ++j;
      if (j < t.size() && t[j].text == "LockRank") {
        while (j < t.size() && t[j].text != "{" && t[j].text != ";") ++j;
        if (j < t.size() && t[j].text == "{") {
          const std::size_t e = MatchForward(t, j);
          int next_val = 0;
          for (std::size_t q = j + 1; q < e; ++q) {
            if (t[q].kind != Kind::kIdent) continue;
            const std::string name = t[q].text;
            int val = next_val;
            if (q + 1 < e && t[q + 1].text == "=") {
              std::size_t p = q + 2;
              int sign = 1;
              if (p < e && t[p].text == "-") {
                sign = -1;
                ++p;
              }
              if (p < e && t[p].kind == Kind::kNumber) {
                val = sign * std::atoi(t[p].text.c_str());
              }
              q = p;
            }
            index.rank_values[name] = val;
            next_val = val + 1;
            while (q < e && t[q].text != ",") ++q;
          }
          i = e;
          continue;
        }
      }
    }

    // Mutex member declarations: `Mutex mu_{LockRank::kStage};`,
    // `mutable Mutex conns_mu_{LockRank::kRegistry};`, `Mutex mu_;`.
    if (s == "Mutex" && i + 1 < t.size() && t[i + 1].kind == Kind::kIdent &&
        (i == 0 || (t[i - 1].text != "class" && t[i - 1].text != "struct"))) {
      const std::string mname = t[i + 1].text;
      std::size_t j = i + 2;
      std::string rank_name = "kUnranked";
      if (j < t.size() && (t[j].text == "{" || t[j].text == "(")) {
        const std::size_t e = MatchForward(t, j);
        for (std::size_t q = j + 1; q < e; ++q) {
          if (t[q].kind == Kind::kIdent && t[q].text.rfind('k', 0) == 0 &&
              t[q].text != "LockRank") {
            rank_name = t[q].text;
          }
        }
        j = e + 1;
      }
      if (j < t.size() && t[j].text == ";") {
        std::string key = mname;
        if (auto cls = EnclosingClass(classes, i)) key = *cls + "::" + mname;
        index.raw_mutex_decls[key].push_back(rank_name);
      }
    }

    // Non-Status return types: any name declared with one of these
    // return types anywhere disqualifies the whole name from the
    // status-checked heuristic (see ProjectIndex::nonstatus_fns).
    static const std::unordered_set<std::string> kNonStatusReturn = {
        "void",     "bool",     "int",      "long",       "short",
        "unsigned", "float",    "double",   "char",       "size_t",
        "uint64_t", "int64_t",  "uint32_t", "int32_t",    "uint8_t",
        "optional", "string",   "string_view",            "vector",
    };
    if (kNonStatusReturn.count(s) != 0 &&
        (i == 0 || (t[i - 1].text != "(" && t[i - 1].text != "," &&
                    t[i - 1].text != "<"))) {
      std::size_t j = i + 1;
      if (j < t.size() && t[j].text == "<") {  // optional<T>, vector<T>
        int d = 0;
        for (; j < t.size(); ++j) {
          if (t[j].text == "<") {
            ++d;
          } else if (t[j].text == ">") {
            if (--d == 0) {
              ++j;
              break;
            }
          } else if (t[j].text == ">>") {
            d -= 2;
            if (d <= 0) {
              ++j;
              break;
            }
          } else if (t[j].text == ";" || t[j].text == "{") {
            break;
          }
        }
      }
      std::string last;
      while (j + 1 < t.size() && t[j].kind == Kind::kIdent &&
             !IsKeyword(t[j].text)) {
        last = t[j].text;
        if (t[j + 1].text == "::") {
          j += 2;
          continue;
        }
        ++j;
        break;
      }
      if (!last.empty() && j < t.size() && t[j].text == "(") {
        index.nonstatus_fns.insert(last);
      }
    }

    // Status / Result<T> returning declarations and definitions.
    if (s == "Status" || s == "Result") {
      std::size_t j = i + 1;
      if (s == "Result") {
        if (j >= t.size() || t[j].text != "<") continue;
        int d = 0;
        bool closed = false;
        for (; j < t.size(); ++j) {
          if (t[j].text == "<") {
            ++d;
          } else if (t[j].text == ">") {
            if (--d == 0) {
              ++j;
              closed = true;
              break;
            }
          } else if (t[j].text == ">>") {
            d -= 2;
            if (d <= 0) {
              ++j;
              closed = true;
              break;
            }
          } else if (t[j].text == ";" || t[j].text == "{") {
            break;
          }
        }
        if (!closed) continue;
      }
      std::string last;
      while (j + 1 < t.size() && t[j].kind == Kind::kIdent) {
        last = t[j].text;
        if (t[j + 1].text == "::") {
          j += 2;
          continue;
        }
        ++j;
        break;
      }
      if (!last.empty() && j < t.size() && t[j].text == "(") {
        index.status_fns.insert(last);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Payload-copy tracking (no-payload-copy).

const std::unordered_set<std::string>& HeavyPayloadTypes() {
  static const std::unordered_set<std::string> kHeavy = {
      "Sample", "SamplePayload", "SampleView",
  };
  return kHeavy;
}

namespace {

struct TrackedVar {
  std::string name;
  std::string type;
  int depth = 0;
};

/// Matches a heavy payload type spelled at token index `i`; sets the
/// display label and the index of the type's final token.
bool MatchHeavyType(const std::vector<Token>& t, std::size_t i,
                    std::string& label, std::size_t& last) {
  if (t[i].kind != Kind::kIdent) return false;
  if (HeavyPayloadTypes().count(t[i].text) != 0) {
    label = t[i].text;
    last = i;
    return true;
  }
  if (t[i].text == "vector" && i + 5 < t.size() && t[i + 1].text == "<" &&
      t[i + 2].text == "std" && t[i + 3].text == "::" &&
      t[i + 4].text == "byte" && t[i + 5].text == ">") {
    label = "std::vector<std::byte>";
    last = i + 5;
    return true;
  }
  return false;
}

const TrackedVar* LookupVar(const std::vector<TrackedVar>& vars,
                            const std::string& name) {
  for (auto it = vars.rbegin(); it != vars.rend(); ++it) {
    if (it->name == name) return &*it;
  }
  return nullptr;
}

/// Walks a definition's parameter list: by-value heavy parameters are
/// copies at every call site; parameters of heavy type (any binding)
/// seed the tracked-variable scope for the body walk.
void ScanParams(const std::vector<Token>& t, const FnDef& fn,
                std::vector<PayloadCopy>& out,
                std::vector<TrackedVar>& vars) {
  std::size_t p = fn.params_begin + 1;
  while (p < fn.params_end) {
    std::size_t q = p;  // one parameter: [p, q)
    int depth = 0, angle = 0;
    for (; q < fn.params_end; ++q) {
      const std::string& s = t[q].text;
      if (s == "(" || s == "[" || s == "{") {
        ++depth;
      } else if (s == ")" || s == "]" || s == "}") {
        --depth;
      } else if (s == "<") {
        ++angle;
      } else if (s == ">") {
        --angle;
      } else if (s == ">>") {
        angle -= 2;
      } else if (s == "," && depth == 0 && angle <= 0) {
        break;
      }
    }
    std::string label;
    std::size_t last = 0;
    bool matched = false;
    for (std::size_t i = p; i < q && !matched; ++i) {
      matched = MatchHeavyType(t, i, label, last);
    }
    if (matched) {
      // Declarator between the type and the name (or the default-arg
      // '='): any '&'/'*' means the parameter does not copy.
      bool by_value = true;
      std::string pname;
      int line = t[last].line;
      for (std::size_t i = last + 1; i < q; ++i) {
        const std::string& s = t[i].text;
        if (s == "&" || s == "&&" || s == "*") by_value = false;
        if (s == "=") break;
        if (t[i].kind == Kind::kIdent && !IsKeyword(s)) {
          pname = s;
          line = t[i].line;
        }
      }
      if (!pname.empty()) vars.push_back({pname, label, 0});
      if (by_value) {
        const std::string who =
            pname.empty() ? "by-value parameter" : "by-value parameter '" + pname + "'";
        out.push_back({label, who, line});
      }
    }
    p = q + 1;
  }
}

/// Body walk with scope-tracked declarations: flags copy-initialization
/// from an lvalue, by-value range-for variables, and lambda
/// capture-by-copy of tracked heavy variables.
void ScanPayloadBody(const FileTokens& file, const FnDef& fn,
                     std::vector<TrackedVar> vars,
                     std::vector<PayloadCopy>& out) {
  const auto& t = file.tokens;
  int depth = 0;
  for (std::size_t k = fn.body_begin; k < fn.body_end; ++k) {
    const Token& tok = t[k];
    if (tok.text == "{") {
      ++depth;
      continue;
    }
    if (tok.text == "}") {
      --depth;
      std::erase_if(vars,
                    [depth](const TrackedVar& v) { return v.depth > depth; });
      continue;
    }
    if (IsLambdaStart(t, k)) {
      // Capture list: `[x]` and `[y = x]` copy; `[&x]`, `[&]`, `this`
      // do not. (`[=]` is not resolved against the body — a default
      // copy-capture of a heavy local should be spelled out anyway.)
      const std::size_t close = MatchForward(t, k);
      for (std::size_t c = k + 1; c < close; ++c) {
        if (t[c].text == "&" || t[c].text == "*") {
          if (c + 1 < close && t[c + 1].kind == Kind::kIdent) ++c;
          continue;
        }
        if (t[c].kind != Kind::kIdent || t[c].text == "this") continue;
        if (c + 1 < close && t[c + 1].text == "=") {
          // Init capture: copying a tracked heavy lvalue is a copy; a
          // move or call result is not.
          const std::size_t e = c + 2;
          if (e < close && t[e].kind == Kind::kIdent &&
              !StartsCallLike(t, e, close)) {
            if (const TrackedVar* v = LookupVar(vars, t[e].text)) {
              out.push_back({v->type,
                             "lambda captures '" + t[e].text + "' by copy",
                             t[c].line});
            }
          }
          int d2 = 0;
          for (c = c + 1; c < close; ++c) {
            const std::string& s2 = t[c].text;
            if (s2 == "(" || s2 == "[" || s2 == "{") {
              ++d2;
            } else if (s2 == ")" || s2 == "]" || s2 == "}") {
              --d2;
            } else if (s2 == "," && d2 == 0) {
              break;
            }
          }
          continue;
        }
        if (const TrackedVar* v = LookupVar(vars, t[c].text)) {
          out.push_back({v->type,
                         "lambda captures '" + t[c].text + "' by copy",
                         t[c].line});
        }
      }
      k = close;  // the lambda body is scanned like any other scope
      continue;
    }
    std::string label;
    std::size_t last = 0;
    if (MatchHeavyType(t, k, label, last)) {
      // Only a declaration counts: heavy type directly followed by a
      // plain identifier (`Sample::kFoo`, `Result<Sample>`, `Sample(`
      // temporaries and `new Sample` are not declarations).
      const std::size_t n = last + 1;
      const bool decl_shaped =
          n < fn.body_end && t[n].kind == Kind::kIdent &&
          !IsKeyword(t[n].text) &&
          (k == 0 || (t[k - 1].text != "." && t[k - 1].text != "->" &&
                      t[k - 1].text != "new"));
      if (decl_shaped) {
        const std::string vname = t[n].text;
        const int line = t[n].line;
        vars.push_back({vname, label, depth});
        const std::size_t v = n + 1;
        if (v < fn.body_end) {
          const std::string& init = t[v].text;
          if (init == "=") {
            if (v + 1 < fn.body_end &&
                (t[v + 1].kind == Kind::kIdent || t[v + 1].text == "*") &&
                !StartsCallLike(t, v + 1, fn.body_end)) {
              out.push_back({label,
                             "copy-initialization of '" + vname +
                                 "' from an lvalue",
                             line});
            }
          } else if (init == ":") {
            out.push_back(
                {label, "range-for copies '" + vname + "' per element", line});
          } else if (init == "(" || init == "{") {
            const std::size_t e = MatchForward(t, v);
            if (e == v + 2 && t[v + 1].kind == Kind::kIdent) {
              if (LookupVar(vars, t[v + 1].text) != nullptr) {
                out.push_back({label,
                               "copy-initialization of '" + vname +
                                   "' from '" + t[v + 1].text + "'",
                               line});
              }
            }
          }
        }
      }
      k = last;
      continue;
    }
  }
}

}  // namespace

std::vector<PayloadCopy> FindPayloadCopies(const FileTokens& file,
                                           const std::vector<FnDef>& fns) {
  std::vector<PayloadCopy> out;
  for (const auto& fn : fns) {
    std::vector<TrackedVar> vars;
    ScanParams(file.tokens, fn, out, vars);
    ScanPayloadBody(file, fn, std::move(vars), out);
  }
  return out;
}

namespace {

/// Fixpoint propagation shared by the blocking and allocation closures:
/// a caller inherits the (already-chained) witness of the first tainted
/// resolvable callee, prefixed with its own name.
void PropagateChains(
    const std::unordered_map<std::string, std::vector<FnDef>>& fns,
    std::unordered_map<std::string, std::string>& chain) {
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& [name, defs] : fns) {
      if (chain.count(name) != 0) continue;
      for (const auto& def : defs) {
        for (const auto& call : def.calls) {
          if (call.name == name || !CrossTuResolvable(call.name)) continue;
          if (fns.count(call.name) == 0) continue;
          const auto it = chain.find(call.name);
          if (it != chain.end()) {
            chain[name] = name + " -> " + it->second;
            changed = true;
            break;
          }
        }
        if (chain.count(name) != 0) break;
      }
    }
  }
}

}  // namespace

int ProjectIndex::RankOf(const std::string& key,
                         const std::string& bare_name) const {
  if (!key.empty()) {
    const auto it = mutex_ranks.find(key);
    if (it != mutex_ranks.end()) return it->second;
  }
  if (ambiguous_mutex_names.count(bare_name) == 0) {
    const auto it = mutex_ranks.find(bare_name);
    if (it != mutex_ranks.end()) return it->second;
  }
  return -1;
}

void FinalizeIndex(ProjectIndex& index) {
  // Resolve mutex declarations to numeric ranks; aggregate bare member
  // names across classes, marking collisions ambiguous so RankOf never
  // guesses between e.g. TieringObject::mu_ (kStage) and
  // PageCacheModel::mu_ (kPageCache).
  std::unordered_map<std::string, std::unordered_set<int>> bare;
  for (const auto& [key, names] : index.raw_mutex_decls) {
    std::unordered_set<int> vals;
    for (const auto& n : names) {
      const auto it = index.rank_values.find(n);
      vals.insert(it == index.rank_values.end() ? -1 : it->second);
    }
    if (vals.size() == 1) {
      const int v = *vals.begin();
      if (v >= 0) index.mutex_ranks[key] = v;
      const std::size_t sep = key.rfind("::");
      const std::string member =
          sep == std::string::npos ? key : key.substr(sep + 2);
      bare[member].insert(v);
    }
  }
  for (const auto& [member, vals] : bare) {
    if (index.mutex_ranks.count(member) != 0) continue;  // already a key
    if (vals.size() == 1 && *vals.begin() >= 0) {
      index.mutex_ranks[member] = *vals.begin();
    } else if (vals.size() > 1) {
      index.ambiguous_mutex_names.insert(member);
    }
  }

  // A name only counts as Status-returning when every declaration of
  // that name in the project agrees (name-keyed ⇒ overload-blind).
  for (const auto& n : index.nonstatus_fns) index.status_fns.erase(n);

  // Blocking and allocation closures over the name-keyed call graph:
  // seed from the primitive sites, then propagate caller -> callee to a
  // fixpoint, prefixing caller names so every entry is a full witness
  // chain back to a primitive (e.g. "Take -> RefillSlow -> operator
  // new").
  for (const auto& [name, defs] : index.fns) {
    for (const auto& def : defs) {
      if (def.hot_path) index.hot_fns.insert(name);
      if (!def.blocking.empty() && index.blocking_chain.count(name) == 0) {
        index.blocking_chain[name] = name + " -> " + def.blocking[0].name;
      }
      if (!def.allocs.empty() && index.alloc_chain.count(name) == 0) {
        index.alloc_chain[name] = name + " -> " + def.allocs[0].name;
      }
    }
  }
  PropagateChains(index.fns, index.blocking_chain);
  PropagateChains(index.fns, index.alloc_chain);

  // Effective acquisition ranks, to a fixpoint.
  for (const auto& [name, defs] : index.fns) {
    for (const auto& def : defs) {
      for (const auto& a : def.acquires) {
        const int r = index.RankOf(a.lookup_key, a.mutex_name);
        if (r < 0) continue;
        auto& m = index.effective_ranks[name];
        if (m.count(r) == 0) m[r] = name + " locks " + a.mutex_name;
      }
    }
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& [name, defs] : index.fns) {
      for (const auto& def : defs) {
        for (const auto& call : def.calls) {
          if (call.name == name || !CrossTuResolvable(call.name)) continue;
          if (index.fns.count(call.name) == 0) continue;
          const auto it = index.effective_ranks.find(call.name);
          if (it == index.effective_ranks.end()) continue;
          const auto src = it->second;  // copy: inserts below may rehash
          auto& m = index.effective_ranks[name];
          for (const auto& [r, chain] : src) {
            if (m.count(r) == 0) {
              m[r] = name + " -> " + chain;
              changed = true;
            }
          }
        }
      }
    }
  }
}

}  // namespace prisma_lint
