#include "analysis.hpp"

#include <algorithm>
#include <cstdlib>

namespace prisma_lint {
namespace {

using Kind = Token::Kind;

std::string Trim(std::string s) {
  const auto b = s.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  const auto e = s.find_last_not_of(" \t");
  return s.substr(b, e - b + 1);
}

/// True when the text at `p` sits inside inline code quoting (an odd
/// number of '`' precede it): doc comments cite the marker forms in
/// backticks precisely so they don't arm them.
bool BacktickQuoted(const std::string& comment, std::size_t p) {
  return std::count(comment.begin(),
                    comment.begin() + static_cast<std::ptrdiff_t>(p), '`') %
             2 !=
         0;
}

/// True when `comment` carries a suppression for `check`:
///   `prisma-lint: allow(<check>[, reason])`
///   `prisma-lint: unguarded(<reason>)`        (guarded-by-coverage only)
bool HasMarker(const std::string& comment, const std::string& check) {
  std::size_t p = comment.find("prisma-lint:");
  if (p == std::string::npos) return false;
  if (BacktickQuoted(comment, p)) return false;
  const std::string rest = comment.substr(p + 12);
  for (std::size_t a = rest.find("allow("); a != std::string::npos;
       a = rest.find("allow(", a + 1)) {
    const std::string inner = rest.substr(a + 6);
    const std::size_t e = inner.find_first_of(",)");
    const std::string name = Trim(inner.substr(0, e));
    if (name == check || name == "all") return true;
  }
  if (check == "guarded-by-coverage" &&
      rest.find("unguarded(") != std::string::npos) {
    return true;
  }
  return false;
}

/// Workflow-command escaping: GitHub parses properties up to ',' / '::',
/// and '%' is its escape character, so those must be encoded. Newlines
/// never occur in messages but are encoded for safety.
std::string GithubEscape(const std::string& s, bool property) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '%') {
      out += "%25";
    } else if (c == '\n') {
      out += "%0A";
    } else if (c == '\r') {
      out += "%0D";
    } else if (property && c == ',') {
      out += "%2C";
    } else if (property && c == ':') {
      out += "%3A";
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

std::string Finding::ToString() const {
  return file + ":" + std::to_string(line) + ": [" + check + "] " + message;
}

std::string Finding::Fingerprint() const {
  const std::size_t slash = file.find_last_of('/');
  const std::string base =
      slash == std::string::npos ? file : file.substr(slash + 1);
  return base + ": [" + check + "] " + message;
}

std::string Finding::ToGitHubAnnotation() const {
  return "::error file=" + GithubEscape(file, true) +
         ",line=" + std::to_string(line) + ",title=prisma-lint " +
         GithubEscape(check, true) + "::" + GithubEscape(message, false);
}

bool IsSuppressed(const FileTokens& file, int line, const std::string& check) {
  if (HasMarker(file.CommentAt(line), check)) return true;
  // A suppression may sit on its own line (or a short run of comment
  // lines) immediately above the flagged statement.
  for (int l = line - 1; l > 0 && file.comment_only_lines.count(l); --l) {
    if (HasMarker(file.CommentAt(l), check)) return true;
  }
  return false;
}

namespace {

/// The exact inverse of IsSuppressed's walk: does a marker on line `l`
/// reach a finding on `line`? Same line, or a run of comment-only lines
/// immediately above the finding.
bool MarkerReaches(const FileTokens& file, int l, int line) {
  if (l == line) return true;
  for (int c = line - 1; c > 0 && file.comment_only_lines.count(c) != 0; --c) {
    if (c == l) return true;
  }
  return false;
}

}  // namespace

std::vector<Finding> FindStaleSuppressions(
    const FileTokens& file, const std::vector<std::string>& known_checks,
    const std::vector<Finding>& findings) {
  // Enumerate every marker (line, check name) in the file. comments is
  // unordered; the driver sorts the returned findings, so collection
  // order here does not matter.
  struct Marker {
    int line = 0;
    std::string name;     // "" for unguarded(...)
    bool unguarded = false;
  };
  std::vector<Marker> markers;
  for (const auto& [line, comment] : file.comments) {
    const std::size_t p = comment.find("prisma-lint:");
    if (p == std::string::npos) continue;
    // Mirror HasMarker exactly: backtick-quoted citations never arm a
    // suppression, so they are not markers to report on either.
    if (BacktickQuoted(comment, p)) continue;
    const std::string rest = comment.substr(p + 12);
    for (std::size_t a = rest.find("allow("); a != std::string::npos;
         a = rest.find("allow(", a + 1)) {
      const std::string name = Trim(
          rest.substr(a + 6, rest.find_first_of(",)", a + 6) - (a + 6)));
      // Check names are strictly [a-z-]: anything else is prose citing
      // the syntax (`allow(<check>, ...)`), not a marker.
      if (name != "all" &&
          name.find_first_not_of("abcdefghijklmnopqrstuvwxyz-") !=
              std::string::npos) {
        continue;
      }
      markers.push_back({line, name, false});
    }
    if (rest.find("unguarded(") != std::string::npos) {
      markers.push_back({line, "", true});
    }
  }

  std::vector<Finding> out;
  for (const auto& m : markers) {
    const std::string check = m.unguarded ? "guarded-by-coverage" : m.name;
    if (!m.unguarded && m.name != "all" &&
        std::find(known_checks.begin(), known_checks.end(), m.name) ==
            known_checks.end()) {
      out.push_back({file.path, m.line, "stale-suppression",
                     "suppression names unknown check '" + m.name +
                         "' (see --list-checks); it silences nothing"});
      continue;
    }
    bool live = false;
    for (const auto& f : findings) {
      if (m.name != "all" && f.check != check) continue;
      if (MarkerReaches(file, m.line, f.line)) {
        live = true;
        break;
      }
    }
    if (live) continue;
    const std::string label =
        m.unguarded ? "unguarded(...)" : "allow(" + m.name + ")";
    out.push_back({file.path, m.line, "stale-suppression",
                   "suppression '" + label +
                       "' matches no finding; remove the dead marker"});
  }
  return out;
}

bool IsKeyword(const std::string& s) {
  static const std::unordered_set<std::string> kKeywords = {
      "if",       "else",     "for",       "while",    "do",
      "switch",   "case",     "default",   "return",   "break",
      "continue", "goto",     "new",       "delete",   "sizeof",
      "alignof",  "alignas",  "static_assert",         "using",
      "namespace","template", "typename",  "class",    "struct",
      "enum",     "union",    "public",    "private",  "protected",
      "virtual",  "override", "final",     "const",    "constexpr",
      "consteval","constinit","static",    "inline",   "friend",
      "typedef",  "operator", "this",      "true",     "false",
      "nullptr",  "try",      "catch",     "throw",    "co_await",
      "co_return","co_yield", "decltype",  "noexcept", "auto",
      "void",     "int",      "char",      "short",    "long",
      "float",    "double",   "bool",      "unsigned", "signed",
      "wchar_t",  "reinterpret_cast",      "static_cast",
      "dynamic_cast",         "const_cast","extern",   "register",
      "volatile", "mutable",  "explicit",  "export",   "requires",
      "concept",  "asm",      "defined",
  };
  return kKeywords.count(s) != 0;
}

bool CrossTuResolvable(const std::string& name) {
  return !name.empty() && name[0] >= 'A' && name[0] <= 'Z';
}

std::size_t MatchForward(const std::vector<Token>& t, std::size_t open) {
  const std::string& o = t[open].text;
  const std::string c = o == "(" ? ")" : o == "{" ? "}" : "]";
  int depth = 0;
  for (std::size_t i = open; i < t.size(); ++i) {
    if (t[i].text == o) {
      ++depth;
    } else if (t[i].text == c) {
      if (--depth == 0) return i;
    }
  }
  return t.size() - 1;  // unbalanced; clamp to EOF
}

// ---------------------------------------------------------------------------
// Class discovery.

std::vector<ClassInfo> ScanClasses(const FileTokens& file) {
  const auto& t = file.tokens;
  std::vector<ClassInfo> out;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != Kind::kIdent) continue;
    if (t[i].text == "enum") {
      // Skip the whole enum: `enum class X : int { ... }` would
      // otherwise read as a class definition named X.
      std::size_t j = i + 1;
      while (j < t.size() && t[j].text != "{" && t[j].text != ";") ++j;
      if (j < t.size() && t[j].text == "{") j = MatchForward(t, j);
      i = j;
      continue;
    }
    if (t[i].text != "class" && t[i].text != "struct") continue;
    std::string name;
    std::size_t j = i + 1;
    bool is_def = false;
    while (j < t.size()) {
      const Token& u = t[j];
      if (u.text == ";" || u.text == ")" || u.text == ">" || u.text == "," ||
          u.text == "*" || u.text == "&") {
        break;  // forward declaration or elaborated type use
      }
      if (u.text == "{") {
        is_def = true;
        break;
      }
      if (u.text == ":") {
        // Base clause: the name is settled; find the body brace.
        while (j < t.size() && t[j].text != "{" && t[j].text != ";") ++j;
        is_def = j < t.size() && t[j].text == "{";
        break;
      }
      if (u.text == "[") {  // [[attribute]]
        j = MatchForward(t, j) + 1;
        continue;
      }
      if (u.kind == Kind::kIdent) {
        if (u.text == "final") {
          ++j;
          continue;
        }
        // An identifier followed by a paren group is an attribute macro
        // (CAPABILITY("mutex")), not the class name.
        if (j + 1 < t.size() && t[j + 1].text == "(") {
          j = MatchForward(t, j + 1) + 1;
          continue;
        }
        if (!name.empty()) {
          // Two plain identifiers: `struct stat st{};` — a variable
          // declaration with an elaborated type, not a definition.
          name.clear();
          break;
        }
        name = u.text;
        ++j;
        continue;
      }
      ++j;
    }
    if (!is_def || name.empty()) continue;
    ClassInfo ci;
    ci.name = name;
    ci.line = t[i].line;
    ci.body_begin = j + 1;
    ci.body_end = MatchForward(t, j);
    out.push_back(ci);
    // Keep scanning inside the body so nested classes are found too.
  }
  return out;
}

std::optional<std::string> EnclosingClass(const std::vector<ClassInfo>& classes,
                                          std::size_t i) {
  const ClassInfo* best = nullptr;
  for (const auto& c : classes) {
    if (c.body_begin <= i && i < c.body_end) {
      if (!best || (c.body_end - c.body_begin) < (best->body_end - best->body_begin)) {
        best = &c;
      }
    }
  }
  if (!best) return std::nullopt;
  return best->name;
}

// ---------------------------------------------------------------------------
// Function discovery with lock liveness.

const std::unordered_set<std::string>& BlockingPrimitives() {
  static const std::unordered_set<std::string> kBlocking = {
      // Syscall-level I/O and waits.
      "read", "write", "pread", "pwrite", "readv", "writev", "preadv",
      "pwritev", "recv", "send", "recvfrom", "sendto", "recvmsg", "sendmsg",
      "accept", "accept4", "connect", "poll", "ppoll", "select", "epoll_wait",
      "epoll_pwait", "io_uring_enter", "open", "openat", "fsync", "fdatasync",
      "stat", "fstat", "lstat", "unlink", "rename", "ftruncate",
      // libc stream I/O.
      "fopen", "fread", "fwrite", "fgets", "fflush", "getline",
      // Sleeps and thread joins.
      "sleep", "usleep", "nanosleep", "sleep_for", "sleep_until", "join",
      // C++ file streams (flagged at construction).
      "ifstream", "ofstream", "fstream",
      // Process spawning.
      "system", "popen",
  };
  return kBlocking;
}

const std::unordered_set<std::string>& AllocationPrimitives() {
  static const std::unordered_set<std::string> kAlloc = {
      "malloc", "calloc", "realloc", "strdup", "strndup", "aligned_alloc",
      "posix_memalign", "make_shared", "make_unique",
      "make_shared_for_overwrite", "make_unique_for_overwrite",
  };
  return kAlloc;
}

const std::unordered_set<std::string>& GrowthMethods() {
  static const std::unordered_set<std::string> kGrowth = {
      "push_back", "emplace_back", "push_front", "emplace_front",
      "resize",    "reserve",      "insert",     "emplace",
      "try_emplace", "append",
  };
  return kGrowth;
}

namespace {

bool IsLambdaStart(const std::vector<Token>& t, std::size_t k) {
  if (t[k].text != "[") return false;
  if (k == 0) return true;
  const Token& p = t[k - 1];
  if (p.kind == Kind::kIdent && !IsKeyword(p.text)) return false;  // subscript
  if (p.kind == Kind::kNumber || p.kind == Kind::kString) return false;
  if (p.text == ")" || p.text == "]") return false;
  return true;
}

struct LiveLock {
  std::string var;
  std::string mutex_name;
  std::string key;
  int rank = -1;
  int depth = 0;
  bool held = true;
};

std::vector<HeldLock> Held(const std::vector<LiveLock>& locks) {
  std::vector<HeldLock> out;
  for (const auto& l : locks) {
    if (l.held) out.push_back({l.mutex_name, l.rank});
  }
  return out;
}

/// True when the expression starting at `p` is "call-like": a
/// (possibly qualified) name directly applied to arguments — a prvalue
/// the initialization moves from, not an lvalue it copies. Covers
/// `std::move(x)`, `Foo(...)`, `obj.Make(...)` is NOT matched (the
/// leading ident is followed by '.'), which is the conservative side.
bool StartsCallLike(const std::vector<Token>& t, std::size_t p,
                    std::size_t end) {
  while (p < end &&
         (t[p].kind == Kind::kIdent || t[p].text == "::" ||
          t[p].text == "<" || t[p].text == ">")) {
    if (t[p].kind == Kind::kIdent && p + 1 < end && t[p + 1].text == "(") {
      return true;
    }
    ++p;
  }
  return false;
}

/// Skips a balanced `<...>` template-argument run starting at `n`
/// (which must be '<'); returns the index just past the closing '>'.
std::size_t SkipAngles(const std::vector<Token>& t, std::size_t n,
                       std::size_t end) {
  int d = 0;
  for (; n < end; ++n) {
    if (t[n].text == "<") {
      ++d;
    } else if (t[n].text == ">") {
      if (--d == 0) return n + 1;
    } else if (t[n].text == ">>") {
      d -= 2;
      if (d <= 0) return n + 1;
    } else if (t[n].text == ";" || t[n].text == "{") {
      break;  // not template arguments after all
    }
  }
  return n;
}

void AnalyzeBody(const std::vector<Token>& t, std::size_t begin,
                 std::size_t end, const ProjectIndex* index, FnDef& def) {
  std::vector<LiveLock> locks;
  int depth = 0;
  for (std::size_t k = begin; k < end; ++k) {
    const Token& tok = t[k];
    if (tok.text == "{") {
      ++depth;
      continue;
    }
    if (tok.text == "}") {
      --depth;
      std::erase_if(locks, [depth](const LiveLock& l) { return l.depth > depth; });
      continue;
    }
    // Lambda bodies are deferred code: they may run on another thread or
    // after the lock is gone, so their contents neither inherit the
    // current lock set nor contribute to this function's call/blocking
    // profile. (Token-global checks still see them.)
    if (IsLambdaStart(t, k)) {
      std::size_t e = MatchForward(t, k);
      std::size_t j = e + 1;
      if (j < end && t[j].text == "(") j = MatchForward(t, j) + 1;
      while (j < end &&
             (t[j].kind == Kind::kIdent || t[j].text == "->" ||
              t[j].text == "::" || t[j].text == "<" || t[j].text == ">" ||
              t[j].text == "*" || t[j].text == "&")) {
        ++j;
      }
      k = (j < end && t[j].text == "{") ? MatchForward(t, j) : e;
      continue;
    }
    if (tok.kind != Kind::kIdent) continue;

    // MutexLock declaration: `MutexLock lock(mu_);` / `{shard->mu}`.
    if (tok.text == "MutexLock" && k + 2 < end &&
        t[k + 1].kind == Kind::kIdent &&
        (t[k + 2].text == "(" || t[k + 2].text == "{")) {
      const std::size_t open = k + 2;
      const std::size_t close = MatchForward(t, open);
      std::string mname;
      std::size_t ident_count = 0;
      for (std::size_t q = open + 1; q < close; ++q) {
        if (t[q].kind == Kind::kIdent) {
          mname = t[q].text;
          ++ident_count;
        }
      }
      std::string key;
      if (ident_count == 1 && !def.class_name.empty()) {
        key = def.class_name + "::" + mname;  // bare member of this class
      }
      AcquireSite site;
      site.mutex_name = mname;
      site.lookup_key = key;
      site.line = tok.line;
      site.held_before = Held(locks);
      def.acquires.push_back(site);
      const int rank = index ? index->RankOf(key, mname) : -1;
      locks.push_back({t[k + 1].text, mname, key, rank, depth, true});
      k = close;
      continue;
    }
    // Relock/unlock toggles on a tracked MutexLock variable.
    if (k + 2 < end && t[k + 1].text == "." && t[k + 2].kind == Kind::kIdent &&
        (t[k + 2].text == "Unlock" || t[k + 2].text == "Lock")) {
      for (auto it = locks.rbegin(); it != locks.rend(); ++it) {
        if (it->var == tok.text) {
          it->held = t[k + 2].text == "Lock";
          break;
        }
      }
      k += 2;
      continue;
    }
    // Blocking primitives: `::read(...)`, `stream.read(...)`, and
    // stream construction `std::ifstream in(path)`.
    if (BlockingPrimitives().count(tok.text) != 0 && k + 1 < end &&
        (t[k + 1].text == "(" || t[k + 1].kind == Kind::kIdent)) {
      CallSite site{tok.text, tok.line, Held(locks)};
      def.blocking.push_back(site);
      continue;
    }
    // Allocation sites (hot-path-purity): operator new, the malloc /
    // make_* family, growth calls on containers, and std::string /
    // std::function construction.
    if (tok.text == "new") {
      def.allocs.push_back({"operator new", tok.line, Held(locks)});
      continue;
    }
    if (AllocationPrimitives().count(tok.text) != 0 && k + 1 < end &&
        (t[k + 1].text == "(" || t[k + 1].text == "<")) {
      def.allocs.push_back({tok.text, tok.line, Held(locks)});
      continue;
    }
    if (GrowthMethods().count(tok.text) != 0 && k > begin &&
        (t[k - 1].text == "." || t[k - 1].text == "->") && k + 1 < end &&
        t[k + 1].text == "(") {
      def.allocs.push_back({tok.text, tok.line, Held(locks)});
      continue;
    }
    if ((tok.text == "string" || tok.text == "function") && k >= 2 &&
        t[k - 1].text == "::" && t[k - 2].text == "std") {
      std::size_t n = k + 1;
      if (n < end && t[n].text == "<") n = SkipAngles(t, n, end);
      bool constructs = false;
      if (n < end && t[n].kind == Kind::kIdent && !IsKeyword(t[n].text)) {
        // Declaration `std::string name ...`: only an initializer that
        // is not a move-from-prvalue allocates (`std::string s;` is SSO,
        // `= std::move(x)` / `= Render(...)` are moves).
        const std::size_t v = n + 1;
        if (v + 1 < end && (t[v].text == "(" || t[v].text == "{")) {
          constructs = t[v + 1].text != ")" && t[v + 1].text != "}";
        } else if (v < end && t[v].text == "=") {
          constructs = !StartsCallLike(t, v + 1, end);
        }
      } else if (n + 1 < end && (t[n].text == "(" || t[n].text == "{")) {
        // Temporary `std::string(...)`.
        constructs = t[n + 1].text != ")" && t[n + 1].text != "}";
      }
      if (constructs) {
        def.allocs.push_back(
            {"std::" + tok.text + " construction", tok.line, Held(locks)});
      }
      continue;
    }
    // Ordinary calls: project-graph edges with the live lock set.
    if (k + 1 < end && t[k + 1].text == "(" && !IsKeyword(tok.text) &&
        tok.text != "MutexLock") {
      def.calls.push_back({tok.text, tok.line, Held(locks)});
      continue;
    }
  }
}

// Defined with the rest of the lifetime/escape machinery below;
// ScanFunctions needs them to stamp per-definition borrow summaries.
bool MatchViewType(const std::vector<Token>& t, std::size_t i,
                   std::string& label, std::size_t& last);
void AnalyzeViewReturns(const std::vector<Token>& t, FnDef& def);

}  // namespace

std::vector<FnDef> ScanFunctions(const FileTokens& file,
                                 const std::vector<ClassInfo>& classes,
                                 const ProjectIndex* index) {
  const auto& t = file.tokens;
  std::vector<FnDef> out;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].kind != Kind::kIdent || IsKeyword(t[i].text)) continue;
    if (t[i + 1].text != "(") continue;
    const std::size_t close = MatchForward(t, i + 1);
    if (close + 1 >= t.size()) continue;

    // Decide definition vs. call/declaration: walk the tokens between
    // the parameter list and a possible body brace. Qualifiers,
    // annotation macros (REQUIRES(mu_) ...), trailing return types and
    // constructor init lists are stepped over; anything else means this
    // was an expression.
    std::size_t j = close + 1;
    bool is_def = false;
    while (j < t.size()) {
      const std::string& s = t[j].text;
      if (s == "{") {
        is_def = true;
        break;
      }
      if (s == ";" || s == "," || s == ")" || s == "]" || s == "}" ||
          s == "=") {
        break;
      }
      if (s == ":") {
        // Constructor init list: ident + group, comma-separated, then
        // the body brace.
        ++j;
        while (j < t.size()) {
          while (j < t.size() &&
                 (t[j].kind == Kind::kIdent || t[j].text == "::" ||
                  t[j].text == "<" || t[j].text == ">" || t[j].text == ",")) {
            ++j;
          }
          if (j >= t.size() || (t[j].text != "(" && t[j].text != "{")) break;
          const std::size_t e = MatchForward(t, j);
          j = e + 1;
          if (j < t.size() && t[j].text == ",") {
            ++j;
            continue;
          }
          break;
        }
        if (j < t.size() && t[j].text == "{") is_def = true;
        break;
      }
      if (t[j].kind == Kind::kIdent) {
        ++j;
        if (j < t.size() && t[j].text == "(") j = MatchForward(t, j) + 1;
        continue;
      }
      if (s == "->" || s == "::" || s == "<" || s == ">" || s == ">>" ||
          s == "*" || s == "&" || s == "&&" || s == "[") {
        j = (s == "[") ? MatchForward(t, j) + 1 : j + 1;
        continue;
      }
      break;
    }
    if (!is_def) continue;

    FnDef def;
    def.name = t[i].text;
    def.file = file.path;
    def.line = t[i].line;
    def.params_begin = i + 1;
    def.params_end = close;
    // PRISMA_HOT_PATH annotation: the attribute macro sits in the
    // declaration prefix, between the previous statement/brace boundary
    // and the function name (the lexer drops its #define, so the marker
    // survives as a plain identifier).
    for (std::size_t b = i; b-- > 0;) {
      const std::string& prefix = t[b].text;
      if (prefix == ";" || prefix == "{" || prefix == "}") break;
      if (prefix == "PRISMA_HOT_PATH") {
        def.hot_path = true;
        break;
      }
    }
    if (i >= 2 && t[i - 1].text == "::" && t[i - 2].kind == Kind::kIdent) {
      def.class_name = t[i - 2].text;
    } else if (auto cls = EnclosingClass(classes, i)) {
      def.class_name = *cls;
    }
    const std::size_t body_end = MatchForward(t, j);
    def.body_begin = j + 1;
    def.body_end = body_end;
    // Borrowed return type (view-escape): a view type spelled in the
    // declaration prefix means every `return` hands out a borrow.
    for (std::size_t b = i; b-- > 0;) {
      const std::string& prefix = t[b].text;
      if (prefix == ";" || prefix == "{" || prefix == "}") break;
      std::string label;
      std::size_t last = 0;
      if (MatchViewType(t, b, label, last) && last < i) {
        def.returns_view = true;
        break;
      }
    }
    AnalyzeBody(t, j + 1, body_end, index, def);
    AnalyzeViewReturns(t, def);
    out.push_back(std::move(def));
    i = body_end;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Index construction.

void IndexDeclarations(const FileTokens& file,
                       const std::vector<ClassInfo>& classes,
                       ProjectIndex& index) {
  const auto& t = file.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != Kind::kIdent) continue;
    const std::string& s = t[i].text;

    // `enum class LockRank { kLeaf = 1, ... }` — the rank table.
    if (s == "enum") {
      std::size_t j = i + 1;
      if (j < t.size() && (t[j].text == "class" || t[j].text == "struct")) ++j;
      if (j < t.size() && t[j].text == "LockRank") {
        while (j < t.size() && t[j].text != "{" && t[j].text != ";") ++j;
        if (j < t.size() && t[j].text == "{") {
          const std::size_t e = MatchForward(t, j);
          int next_val = 0;
          for (std::size_t q = j + 1; q < e; ++q) {
            if (t[q].kind != Kind::kIdent) continue;
            const std::string name = t[q].text;
            int val = next_val;
            if (q + 1 < e && t[q + 1].text == "=") {
              std::size_t p = q + 2;
              int sign = 1;
              if (p < e && t[p].text == "-") {
                sign = -1;
                ++p;
              }
              if (p < e && t[p].kind == Kind::kNumber) {
                val = sign * std::atoi(t[p].text.c_str());
              }
              q = p;
            }
            index.rank_values[name] = val;
            next_val = val + 1;
            while (q < e && t[q].text != ",") ++q;
          }
          i = e;
          continue;
        }
      }
    }

    // Mutex member declarations: `Mutex mu_{LockRank::kStage};`,
    // `mutable Mutex conns_mu_{LockRank::kRegistry};`, `Mutex mu_;`.
    if (s == "Mutex" && i + 1 < t.size() && t[i + 1].kind == Kind::kIdent &&
        (i == 0 || (t[i - 1].text != "class" && t[i - 1].text != "struct"))) {
      const std::string mname = t[i + 1].text;
      std::size_t j = i + 2;
      std::string rank_name = "kUnranked";
      if (j < t.size() && (t[j].text == "{" || t[j].text == "(")) {
        const std::size_t e = MatchForward(t, j);
        for (std::size_t q = j + 1; q < e; ++q) {
          if (t[q].kind == Kind::kIdent && t[q].text.rfind('k', 0) == 0 &&
              t[q].text != "LockRank") {
            rank_name = t[q].text;
          }
        }
        j = e + 1;
      }
      if (j < t.size() && t[j].text == ";") {
        std::string key = mname;
        if (auto cls = EnclosingClass(classes, i)) key = *cls + "::" + mname;
        index.raw_mutex_decls[key].push_back(rank_name);
      }
    }

    // Non-Status return types: any name declared with one of these
    // return types anywhere disqualifies the whole name from the
    // status-checked heuristic (see ProjectIndex::nonstatus_fns).
    static const std::unordered_set<std::string> kNonStatusReturn = {
        "void",     "bool",     "int",      "long",       "short",
        "unsigned", "float",    "double",   "char",       "size_t",
        "uint64_t", "int64_t",  "uint32_t", "int32_t",    "uint8_t",
        "optional", "string",   "string_view",            "vector",
    };
    if (kNonStatusReturn.count(s) != 0 &&
        (i == 0 || (t[i - 1].text != "(" && t[i - 1].text != "," &&
                    t[i - 1].text != "<"))) {
      std::size_t j = i + 1;
      if (j < t.size() && t[j].text == "<") {  // optional<T>, vector<T>
        int d = 0;
        for (; j < t.size(); ++j) {
          if (t[j].text == "<") {
            ++d;
          } else if (t[j].text == ">") {
            if (--d == 0) {
              ++j;
              break;
            }
          } else if (t[j].text == ">>") {
            d -= 2;
            if (d <= 0) {
              ++j;
              break;
            }
          } else if (t[j].text == ";" || t[j].text == "{") {
            break;
          }
        }
      }
      std::string last;
      while (j + 1 < t.size() && t[j].kind == Kind::kIdent &&
             !IsKeyword(t[j].text)) {
        last = t[j].text;
        if (t[j + 1].text == "::") {
          j += 2;
          continue;
        }
        ++j;
        break;
      }
      if (!last.empty() && j < t.size() && t[j].text == "(") {
        index.nonstatus_fns.insert(last);
      }
    }

    // Status / Result<T> returning declarations and definitions.
    if (s == "Status" || s == "Result") {
      std::size_t j = i + 1;
      if (s == "Result") {
        if (j >= t.size() || t[j].text != "<") continue;
        int d = 0;
        bool closed = false;
        for (; j < t.size(); ++j) {
          if (t[j].text == "<") {
            ++d;
          } else if (t[j].text == ">") {
            if (--d == 0) {
              ++j;
              closed = true;
              break;
            }
          } else if (t[j].text == ">>") {
            d -= 2;
            if (d <= 0) {
              ++j;
              closed = true;
              break;
            }
          } else if (t[j].text == ";" || t[j].text == "{") {
            break;
          }
        }
        if (!closed) continue;
      }
      std::string last;
      while (j + 1 < t.size() && t[j].kind == Kind::kIdent) {
        last = t[j].text;
        if (t[j + 1].text == "::") {
          j += 2;
          continue;
        }
        ++j;
        break;
      }
      if (!last.empty() && j < t.size() && t[j].text == "(") {
        index.status_fns.insert(last);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Payload-copy tracking (no-payload-copy).

const std::unordered_set<std::string>& HeavyPayloadTypes() {
  static const std::unordered_set<std::string> kHeavy = {
      "Sample", "SamplePayload", "SampleView",
  };
  return kHeavy;
}

namespace {

struct TrackedVar {
  std::string name;
  std::string type;
  int depth = 0;
};

/// Matches a heavy payload type spelled at token index `i`; sets the
/// display label and the index of the type's final token.
bool MatchHeavyType(const std::vector<Token>& t, std::size_t i,
                    std::string& label, std::size_t& last) {
  if (t[i].kind != Kind::kIdent) return false;
  if (HeavyPayloadTypes().count(t[i].text) != 0) {
    label = t[i].text;
    last = i;
    return true;
  }
  if (t[i].text == "vector" && i + 5 < t.size() && t[i + 1].text == "<" &&
      t[i + 2].text == "std" && t[i + 3].text == "::" &&
      t[i + 4].text == "byte" && t[i + 5].text == ">") {
    label = "std::vector<std::byte>";
    last = i + 5;
    return true;
  }
  return false;
}

const TrackedVar* LookupVar(const std::vector<TrackedVar>& vars,
                            const std::string& name) {
  for (auto it = vars.rbegin(); it != vars.rend(); ++it) {
    if (it->name == name) return &*it;
  }
  return nullptr;
}

/// Walks a definition's parameter list: by-value heavy parameters are
/// copies at every call site; parameters of heavy type (any binding)
/// seed the tracked-variable scope for the body walk.
void ScanParams(const std::vector<Token>& t, const FnDef& fn,
                std::vector<PayloadCopy>& out,
                std::vector<TrackedVar>& vars) {
  std::size_t p = fn.params_begin + 1;
  while (p < fn.params_end) {
    std::size_t q = p;  // one parameter: [p, q)
    int depth = 0, angle = 0;
    for (; q < fn.params_end; ++q) {
      const std::string& s = t[q].text;
      if (s == "(" || s == "[" || s == "{") {
        ++depth;
      } else if (s == ")" || s == "]" || s == "}") {
        --depth;
      } else if (s == "<") {
        ++angle;
      } else if (s == ">") {
        --angle;
      } else if (s == ">>") {
        angle -= 2;
      } else if (s == "," && depth == 0 && angle <= 0) {
        break;
      }
    }
    std::string label;
    std::size_t last = 0;
    bool matched = false;
    for (std::size_t i = p; i < q && !matched; ++i) {
      matched = MatchHeavyType(t, i, label, last);
    }
    if (matched) {
      // Declarator between the type and the name (or the default-arg
      // '='): any '&'/'*' means the parameter does not copy.
      bool by_value = true;
      std::string pname;
      int line = t[last].line;
      for (std::size_t i = last + 1; i < q; ++i) {
        const std::string& s = t[i].text;
        if (s == "&" || s == "&&" || s == "*") by_value = false;
        if (s == "=") break;
        if (t[i].kind == Kind::kIdent && !IsKeyword(s)) {
          pname = s;
          line = t[i].line;
        }
      }
      if (!pname.empty()) vars.push_back({pname, label, 0});
      if (by_value) {
        const std::string who =
            pname.empty() ? "by-value parameter" : "by-value parameter '" + pname + "'";
        out.push_back({label, who, line});
      }
    }
    p = q + 1;
  }
}

/// Body walk with scope-tracked declarations: flags copy-initialization
/// from an lvalue, by-value range-for variables, and lambda
/// capture-by-copy of tracked heavy variables.
void ScanPayloadBody(const FileTokens& file, const FnDef& fn,
                     std::vector<TrackedVar> vars,
                     std::vector<PayloadCopy>& out) {
  const auto& t = file.tokens;
  int depth = 0;
  for (std::size_t k = fn.body_begin; k < fn.body_end; ++k) {
    const Token& tok = t[k];
    if (tok.text == "{") {
      ++depth;
      continue;
    }
    if (tok.text == "}") {
      --depth;
      std::erase_if(vars,
                    [depth](const TrackedVar& v) { return v.depth > depth; });
      continue;
    }
    if (IsLambdaStart(t, k)) {
      // Capture list: `[x]` and `[y = x]` copy; `[&x]`, `[&]`, `this`
      // do not. (`[=]` is not resolved against the body — a default
      // copy-capture of a heavy local should be spelled out anyway.)
      const std::size_t close = MatchForward(t, k);
      for (std::size_t c = k + 1; c < close; ++c) {
        if (t[c].text == "&" || t[c].text == "*") {
          if (c + 1 < close && t[c + 1].kind == Kind::kIdent) ++c;
          continue;
        }
        if (t[c].kind != Kind::kIdent || t[c].text == "this") continue;
        if (c + 1 < close && t[c + 1].text == "=") {
          // Init capture: copying a tracked heavy lvalue is a copy; a
          // move or call result is not.
          const std::size_t e = c + 2;
          if (e < close && t[e].kind == Kind::kIdent &&
              !StartsCallLike(t, e, close)) {
            if (const TrackedVar* v = LookupVar(vars, t[e].text)) {
              out.push_back({v->type,
                             "lambda captures '" + t[e].text + "' by copy",
                             t[c].line});
            }
          }
          int d2 = 0;
          for (c = c + 1; c < close; ++c) {
            const std::string& s2 = t[c].text;
            if (s2 == "(" || s2 == "[" || s2 == "{") {
              ++d2;
            } else if (s2 == ")" || s2 == "]" || s2 == "}") {
              --d2;
            } else if (s2 == "," && d2 == 0) {
              break;
            }
          }
          continue;
        }
        if (const TrackedVar* v = LookupVar(vars, t[c].text)) {
          out.push_back({v->type,
                         "lambda captures '" + t[c].text + "' by copy",
                         t[c].line});
        }
      }
      k = close;  // the lambda body is scanned like any other scope
      continue;
    }
    std::string label;
    std::size_t last = 0;
    if (MatchHeavyType(t, k, label, last)) {
      // Only a declaration counts: heavy type directly followed by a
      // plain identifier (`Sample::kFoo`, `Result<Sample>`, `Sample(`
      // temporaries and `new Sample` are not declarations).
      const std::size_t n = last + 1;
      const bool decl_shaped =
          n < fn.body_end && t[n].kind == Kind::kIdent &&
          !IsKeyword(t[n].text) &&
          (k == 0 || (t[k - 1].text != "." && t[k - 1].text != "->" &&
                      t[k - 1].text != "new"));
      if (decl_shaped) {
        const std::string vname = t[n].text;
        const int line = t[n].line;
        vars.push_back({vname, label, depth});
        const std::size_t v = n + 1;
        if (v < fn.body_end) {
          const std::string& init = t[v].text;
          if (init == "=") {
            if (v + 1 < fn.body_end &&
                (t[v + 1].kind == Kind::kIdent || t[v + 1].text == "*") &&
                !StartsCallLike(t, v + 1, fn.body_end)) {
              out.push_back({label,
                             "copy-initialization of '" + vname +
                                 "' from an lvalue",
                             line});
            }
          } else if (init == ":") {
            out.push_back(
                {label, "range-for copies '" + vname + "' per element", line});
          } else if (init == "(" || init == "{") {
            const std::size_t e = MatchForward(t, v);
            if (e == v + 2 && t[v + 1].kind == Kind::kIdent) {
              if (LookupVar(vars, t[v + 1].text) != nullptr) {
                out.push_back({label,
                               "copy-initialization of '" + vname +
                                   "' from '" + t[v + 1].text + "'",
                               line});
              }
            }
          }
        }
      }
      k = last;
      continue;
    }
  }
}

}  // namespace

std::vector<PayloadCopy> FindPayloadCopies(const FileTokens& file,
                                           const std::vector<FnDef>& fns) {
  std::vector<PayloadCopy> out;
  for (const auto& fn : fns) {
    std::vector<TrackedVar> vars;
    ScanParams(file.tokens, fn, out, vars);
    ScanPayloadBody(file, fn, std::move(vars), out);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Lifetime & escape analysis (view-escape).

const std::unordered_set<std::string>& ViewOwnerTypes() {
  static const std::unordered_set<std::string> kOwners = {
      // `string` only counts as std::string (see MatchOwnerType);
      // std::vector<std::byte> is matched structurally.
      "Sample", "SamplePayload", "PayloadWriter", "string",
  };
  return kOwners;
}

const std::unordered_set<std::string>& BorrowAccessors() {
  static const std::unordered_set<std::string> kAccessors = {
      "span", "data", "bytes", "c_str", "substr", "subspan", "first", "last",
  };
  return kAccessors;
}

const std::unordered_set<std::string>& DeferredSinks() {
  static const std::unordered_set<std::string> kSinks = {
      // ThreadPool / BoundedQueue entry points, plus callback-container
      // pushes (a stored lambda outlives the frame that built it).
      // std::thread / std::async are recognized structurally.
      "Submit", "Push", "TryPush", "Post", "Defer", "Dispatch",
      "push_back", "emplace_back",
  };
  return kSinks;
}

namespace {

/// A borrowed-view type spelled at `i`: SampleView, std::string_view,
/// or std::span<...>; sets the display label and the type's final token.
bool MatchViewType(const std::vector<Token>& t, std::size_t i,
                   std::string& label, std::size_t& last) {
  if (t[i].kind != Kind::kIdent) return false;
  if (t[i].text == "SampleView") {
    label = "SampleView";
    last = i;
    return true;
  }
  if (t[i].text == "string_view") {
    label = "std::string_view";
    last = i;
    return true;
  }
  if (t[i].text == "span" && i >= 2 && t[i - 1].text == "::" &&
      t[i - 2].text == "std" && i + 1 < t.size() && t[i + 1].text == "<") {
    label = "std::span";
    last = SkipAngles(t, i + 1, t.size()) - 1;
    return true;
  }
  return false;
}

/// An owner type spelled at `i` (storage a view can point into).
bool MatchOwnerType(const std::vector<Token>& t, std::size_t i,
                    std::string& label, std::size_t& last) {
  if (t[i].kind != Kind::kIdent) return false;
  if (ViewOwnerTypes().count(t[i].text) != 0) {
    if (t[i].text == "string" &&
        !(i >= 2 && t[i - 1].text == "::" && t[i - 2].text == "std")) {
      return false;  // string_view is a distinct token; bare `string` is not ours
    }
    label = t[i].text == "string" ? "std::string" : t[i].text;
    last = i;
    return true;
  }
  if (t[i].text == "vector" && i + 5 < t.size() && t[i + 1].text == "<" &&
      t[i + 2].text == "std" && t[i + 3].text == "::" &&
      t[i + 4].text == "byte" && t[i + 5].text == ">") {
    label = "std::vector<std::byte>";
    last = i + 5;
    return true;
  }
  return false;
}

/// Where a borrowed view's storage lives.
enum class BorrowRoot { kLocal, kParam, kUnknown };

struct BorrowVar {
  std::string name;
  std::string type;  // display label
  int depth = 0;
  bool is_view = false;     // false: an owner
  bool refcounted = false;  // SampleView: copies keep the payload alive
  BorrowRoot root = BorrowRoot::kUnknown;
  std::string root_name;  // owner (or parameter) the storage belongs to
  std::string via;        // helper-call witness chain, "" when direct
};

const BorrowVar* LookupBorrow(const std::vector<BorrowVar>& vars,
                              const std::string& name) {
  for (auto it = vars.rbegin(); it != vars.rend(); ++it) {
    if (it->name == name) return &*it;
  }
  return nullptr;
}

BorrowVar* LookupBorrowMut(std::vector<BorrowVar>& vars,
                           const std::string& name) {
  for (auto it = vars.rbegin(); it != vars.rend(); ++it) {
    if (it->name == name) return &*it;
  }
  return nullptr;
}

/// The callee name when [b, e) starts call-like (`Foo(...)`,
/// `std::move(...)`); "" otherwise. Used to tell owning conversions
/// (`std::string(view)`) from borrow-producing helpers.
std::string FirstCallee(const std::vector<Token>& t, std::size_t b,
                        std::size_t e) {
  for (std::size_t p = b;
       p < e && (t[p].kind == Kind::kIdent || t[p].text == "::" ||
                 t[p].text == "<" || t[p].text == ">");
       ++p) {
    if (t[p].kind == Kind::kIdent && p + 1 < e && t[p + 1].text == "(") {
      return t[p].text;
    }
  }
  return "";
}

/// What an initializer / RHS expression [b, e) borrows from: scans for
/// the first identifier that resolves to a tracked owner or view, with
/// helper calls that carry a borrows-from-param summary contributing a
/// witness chain. `chain` may be null (pass 1: no index yet).
struct BorrowResolution {
  bool resolved = false;
  /// The expression yields a borrow on the spot: a tracked view, an
  /// owner accessor (`buf.data()`), or a summarized helper call.
  bool is_view_source = false;
  bool refcounted = false;
  BorrowRoot root = BorrowRoot::kUnknown;
  std::string root_name;
  std::string via;
};

BorrowResolution ResolveBorrow(
    const std::vector<Token>& t, std::size_t b, std::size_t e,
    const std::vector<BorrowVar>& vars,
    const std::unordered_map<std::string, std::string>* chain) {
  BorrowResolution r;
  // A `SampleView{payload, off, n}` / `SampleView(...)` construction is
  // refcounted on the spot: the new view shares ownership of whatever
  // payload it is handed, so nothing borrows frame storage.
  if (b < e && t[b].text == "SampleView" && b + 1 < e &&
      (t[b + 1].text == "{" || t[b + 1].text == "(")) {
    r.resolved = true;
    r.is_view_source = true;
    r.refcounted = true;
    return r;
  }
  // An explicit `Result<...>(expr)` wrapper is transparent: the Result
  // owns whatever `expr` yields, so borrow resolution applies to the
  // wrapped expression. `Result<SampleView>(SampleView{p, o, n})` hits
  // the refcounted construction above; `Result<SampleView>(local_view)`
  // still resolves the local and reports the escape.
  if (b < e && t[b].text == "Result" && b + 1 < e && t[b + 1].text == "<") {
    std::size_t p = b + 2;
    int depth = 1;
    while (p < e && depth > 0) {
      if (t[p].text == "<") ++depth;
      if (t[p].text == ">") --depth;
      ++p;
    }
    if (p < e && t[p].text == "(") {
      return ResolveBorrow(t, p + 1, e, vars, chain);
    }
  }
  std::string via;
  for (std::size_t k = b; k < e; ++k) {
    if (t[k].kind != Kind::kIdent) continue;
    const std::string& s = t[k].text;
    if (s == "std" || s == "move") continue;
    if (k + 1 < e && t[k + 1].text == "(" && via.empty() && chain != nullptr) {
      const auto it = chain->find(s);
      if (it != chain->end()) {
        via = it->second;
        continue;
      }
    }
    const BorrowVar* v = LookupBorrow(vars, s);
    if (v == nullptr) continue;
    const bool accessor =
        k + 3 < e && (t[k + 1].text == "." || t[k + 1].text == "->") &&
        BorrowAccessors().count(t[k + 2].text) != 0 && t[k + 3].text == "(";
    r.resolved = true;
    r.root = v->root;
    r.via = !via.empty() ? via : v->via;
    if (v->is_view) {
      r.is_view_source = true;
      r.root_name = v->root_name;
      // A raw accessor on a refcounted view (SampleView::data()) drops
      // the refcount back to a plain borrow.
      r.refcounted = v->refcounted && !accessor;
    } else {
      r.root_name = v->name;
      r.is_view_source = accessor || !via.empty();
      r.refcounted = false;
    }
    return r;
  }
  return r;
}

/// View-typed (and view-container-typed) data members declared in this
/// file's class bodies, excluding function-body ranges. Storing a
/// borrowed view into one of these escapes the borrower's frame.
std::unordered_set<std::string> CollectViewMembers(
    const FileTokens& file, const std::vector<ClassInfo>& classes,
    const std::vector<FnDef>& fns) {
  std::unordered_set<std::string> out;
  const auto& t = file.tokens;
  static const std::unordered_set<std::string> kContainers = {
      "vector", "deque", "list", "array", "map", "unordered_map",
      "set",    "unordered_set",  "optional", "pair", "tuple",
  };
  auto in_fn_body = [&fns](std::size_t i) {
    for (const auto& fn : fns) {
      if (fn.body_begin <= i && i < fn.body_end) return true;
    }
    return false;
  };
  for (const auto& cls : classes) {
    for (std::size_t i = cls.body_begin; i < cls.body_end; ++i) {
      if (t[i].kind != Kind::kIdent || in_fn_body(i)) continue;
      std::string label;
      std::size_t last = 0;
      std::size_t name_at = 0;
      if (MatchViewType(t, i, label, last)) {
        name_at = last + 1;
      } else if (kContainers.count(t[i].text) != 0 && i + 1 < cls.body_end &&
                 t[i + 1].text == "<") {
        const std::size_t past = SkipAngles(t, i + 1, cls.body_end);
        bool has_view = false;
        for (std::size_t q = i + 2; q + 1 < past && !has_view; ++q) {
          std::string l2;
          std::size_t u2 = 0;
          has_view = MatchViewType(t, q, l2, u2);
        }
        if (!has_view) continue;
        name_at = past;
      } else {
        continue;
      }
      if (name_at + 1 >= cls.body_end || t[name_at].kind != Kind::kIdent ||
          IsKeyword(t[name_at].text)) {
        continue;
      }
      const std::string& nx = t[name_at + 1].text;
      if (nx == ";" || nx == "=" || nx == "{" || nx == "[") {
        out.insert(t[name_at].text);
      }
    }
  }
  return out;
}

/// Seeds the borrow scope from a parameter list: view parameters and
/// owner parameters (by-value owners are function-local storage).
void ScanBorrowParams(const std::vector<Token>& t, const FnDef& fn,
                      std::vector<BorrowVar>& vars) {
  std::size_t p = fn.params_begin + 1;
  while (p < fn.params_end) {
    std::size_t q = p;  // one parameter: [p, q)
    int depth = 0, angle = 0;
    for (; q < fn.params_end; ++q) {
      const std::string& s = t[q].text;
      if (s == "(" || s == "[" || s == "{") {
        ++depth;
      } else if (s == ")" || s == "]" || s == "}") {
        --depth;
      } else if (s == "<") {
        ++angle;
      } else if (s == ">") {
        --angle;
      } else if (s == ">>") {
        angle -= 2;
      } else if (s == "," && depth == 0 && angle <= 0) {
        break;
      }
    }
    std::string label;
    std::size_t last = 0;
    bool is_view = false, matched = false;
    for (std::size_t i = p; i < q && !matched; ++i) {
      if (MatchViewType(t, i, label, last)) {
        matched = is_view = true;
      } else if (MatchOwnerType(t, i, label, last)) {
        matched = true;
      }
    }
    if (matched) {
      bool by_value = true;
      std::string pname;
      for (std::size_t i = last + 1; i < q; ++i) {
        const std::string& s = t[i].text;
        if (s == "&" || s == "&&" || s == "*") by_value = false;
        if (s == "=") break;
        if (t[i].kind == Kind::kIdent && !IsKeyword(s)) pname = s;
      }
      if (!pname.empty()) {
        BorrowVar v;
        v.name = pname;
        v.type = label;
        v.depth = 0;
        v.is_view = is_view;
        v.refcounted = is_view && label == "SampleView";
        // A view parameter borrows the caller's storage; a by-value
        // owner parameter IS function-local storage.
        v.root = is_view ? BorrowRoot::kParam
                         : (by_value ? BorrowRoot::kLocal : BorrowRoot::kParam);
        v.root_name = pname;
        vars.push_back(std::move(v));
      }
    }
    p = q + 1;
  }
}

std::string RootLabel(BorrowRoot root) {
  return root == BorrowRoot::kLocal ? "local" : "parameter";
}

std::string ViaSuffix(const std::string& via) {
  return via.empty() ? "" : " (via " + via + ")";
}

/// For a lambda whose capture list opens at `open`, locates the body.
/// Returns the capture-list close index; bb/be get the body token range
/// (be = the closing `}`), or both stay 0 when no body brace follows.
std::size_t LambdaBounds(const std::vector<Token>& t, std::size_t open,
                         std::size_t end, std::size_t& bb, std::size_t& be) {
  const std::size_t close = MatchForward(t, open);
  bb = be = 0;
  std::size_t j = close + 1;
  if (j < end && t[j].text == "(") j = MatchForward(t, j) + 1;
  while (j < end) {
    const std::string& s = t[j].text;
    if (s == "(") {  // noexcept(...) and friends
      j = MatchForward(t, j) + 1;
      continue;
    }
    if (t[j].kind == Kind::kIdent || s == "->" || s == "::" || s == "<" ||
        s == ">" || s == "*" || s == "&") {
      ++j;
      continue;
    }
    break;
  }
  if (j < end && t[j].text == "{") {
    bb = j + 1;
    be = MatchForward(t, j);
  }
  return close;
}

/// End of the statement starting at `b`: the `;` at nesting depth zero
/// (parens/brackets/braces all count), capped at `end`.
std::size_t StmtEnd(const std::vector<Token>& t, std::size_t b,
                    std::size_t end) {
  int depth = 0;
  for (std::size_t e = b; e < end; ++e) {
    const std::string& s = t[e].text;
    if (s == "(" || s == "[" || s == "{") {
      ++depth;
    } else if (s == ")" || s == "]" || s == "}") {
      if (--depth < 0) return e;
    } else if (s == ";" && depth == 0) {
      return e;
    }
  }
  return end;
}

/// Declares a view or owner starting at `k`; on success pushes the
/// variable (rooted per `ResolveBorrow` over its initializer) and
/// returns the name token index. `chain` may be null (pass 1).
std::size_t ScanBorrowDecl(
    const std::vector<Token>& t, std::size_t k, std::size_t body_begin,
    std::size_t body_end, int depth, std::vector<BorrowVar>& vars,
    const std::unordered_map<std::string, std::string>* chain) {
  std::string label;
  std::size_t last = 0;
  bool is_view = MatchViewType(t, k, label, last);
  bool is_owner = !is_view && MatchOwnerType(t, k, label, last);
  bool is_ptr_view = false;
  if (!is_view && !is_owner) {
    // Raw borrowed pointers: `const std::byte* p = buf.data();` and
    // `auto* / auto&` bindings that resolve to a tracked borrow.
    if ((t[k].text == "byte" || t[k].text == "char" || t[k].text == "auto") &&
        k + 1 < body_end && (t[k + 1].text == "*" || t[k + 1].text == "&")) {
      is_view = is_ptr_view = true;
      label = t[k].text == "auto" ? "auto&" : "borrowed pointer";
      last = k;
    } else {
      return 0;
    }
  }
  if (k > body_begin &&
      (t[k - 1].text == "." || t[k - 1].text == "->" || t[k - 1].text == "new" ||
       t[k - 1].text == "<" || t[k - 1].text == "(")) {
    return 0;  // member access, placement, template argument, or cast
  }
  std::size_t nm = last + 1;
  bool by_ref = false;
  while (nm < body_end &&
         (t[nm].text == "&" || t[nm].text == "&&" || t[nm].text == "*")) {
    by_ref = true;
    ++nm;
  }
  if (nm >= body_end || t[nm].kind != Kind::kIdent || IsKeyword(t[nm].text)) {
    return 0;
  }
  // Initializer range, if any: `= expr ;`, `(expr)`, `{expr}`.
  std::size_t ib = 0, ie = 0;
  if (nm + 1 < body_end) {
    const std::string& nx = t[nm + 1].text;
    if (nx == "=") {
      ib = nm + 2;
      ie = StmtEnd(t, ib, body_end);
    } else if (nx == "(" || nx == "{") {
      ib = nm + 2;
      ie = MatchForward(t, nm + 1);
    } else if (nx != ";" && nx != ":") {
      return 0;  // not a declaration after all (e.g. `Sample s2(` handled, `s.f` not)
    }
  }
  const bool is_auto = is_ptr_view && t[k].text == "auto";
  if (is_auto && ib == 0) return 0;  // range-for element, etc.
  BorrowVar v;
  v.name = t[nm].text;
  v.type = label;
  v.depth = depth;
  v.is_view = is_view;
  v.refcounted = is_view && label == "SampleView";
  v.root = BorrowRoot::kUnknown;
  if (!is_view && !by_ref) {
    // A by-value owner local is its own storage.
    v.root = BorrowRoot::kLocal;
    v.root_name = v.name;
  } else if (ib != 0) {
    // Guard: an unknown call-like initializer (`std::string(view)`)
    // may be an owning conversion — leave the root unknown unless the
    // callee carries a borrows-from-param summary.
    const std::string callee = FirstCallee(t, ib, ie);
    const bool opaque_call =
        !callee.empty() && callee != "move" &&
        (chain == nullptr || chain->count(callee) == 0);
    if (!opaque_call) {
      const BorrowResolution r = ResolveBorrow(t, ib, ie, vars, chain);
      if (r.resolved) {
        v.root = r.root;
        v.root_name = r.root_name;
        v.via = r.via;
        if (is_auto && !r.is_view_source) {
          // `auto& s = sample;` aliases an owner rather than borrowing.
          v.is_view = false;
          v.refcounted = false;
        }
      } else if (is_auto) {
        return 0;  // auto&/auto* of something we don't track at all
      }
    } else if (is_auto) {
      return 0;  // auto bound to an opaque call — type unknown
    }
  }
  vars.push_back(std::move(v));
  return nm;
}

/// Pass-1 summary: does this view-returning function hand back a borrow
/// of one of its parameters? Direct returns set `view_of_param`;
/// `return Helper(param)` records a call edge so FinalizeIndex can
/// chain summaries to a fixpoint alongside alloc/blocking chains.
void AnalyzeViewReturns(const std::vector<Token>& t, FnDef& def) {
  if (!def.returns_view) return;
  std::vector<BorrowVar> vars;
  ScanBorrowParams(t, def, vars);
  int depth = 0;
  for (std::size_t k = def.body_begin; k < def.body_end; ++k) {
    const Token& tok = t[k];
    if (tok.text == "{") {
      ++depth;
      continue;
    }
    if (tok.text == "}") {
      --depth;
      std::erase_if(vars,
                    [depth](const BorrowVar& v) { return v.depth > depth; });
      continue;
    }
    if (IsLambdaStart(t, k)) {
      // A lambda's `return` is the lambda's, not this function's.
      std::size_t bb = 0, be = 0;
      const std::size_t close = LambdaBounds(t, k, def.body_end, bb, be);
      k = be != 0 ? be : close;
      continue;
    }
    if (tok.kind != Kind::kIdent) continue;
    if (tok.text == "return") {
      const std::size_t e = StmtEnd(t, k + 1, def.body_end);
      const std::string callee = FirstCallee(t, k + 1, e);
      if (!callee.empty() && callee != "move") {
        // Borrowing through a helper: record the edge; the closure in
        // FinalizeIndex decides whether the helper borrows its params.
        if (CrossTuResolvable(callee)) {
          for (std::size_t q = k + 1; q < e; ++q) {
            if (t[q].kind != Kind::kIdent) continue;
            const BorrowVar* v = LookupBorrow(vars, t[q].text);
            if (v != nullptr && v->root == BorrowRoot::kParam) {
              def.view_return_param_calls.push_back(callee);
              break;
            }
          }
        }
      } else {
        const BorrowResolution r = ResolveBorrow(t, k + 1, e, vars, nullptr);
        if (r.resolved && r.root == BorrowRoot::kParam &&
            def.view_of_param.empty()) {
          def.view_of_param =
              def.name + " returns a view of its parameter '" + r.root_name +
              "'";
        }
      }
      k = e;
      continue;
    }
    const std::size_t nm = ScanBorrowDecl(t, k, def.body_begin, def.body_end,
                                          depth, vars, nullptr);
    if (nm != 0) k = nm;
  }
}

/// The deferred sink a call whose paren opens at `open` represents, or
/// "" when the call runs before the frame unwinds. `std::thread t(...)`
/// and `std::async(...)` are spotted by looking back a few tokens (the
/// variable name may sit between the type and the paren).
std::string SinkAt(const std::vector<Token>& t, std::size_t begin,
                   std::size_t open) {
  const std::size_t lb = open > begin + 5 ? open - 5 : begin;
  for (std::size_t b = open; b-- > lb;) {
    const std::string& s = t[b].text;
    if (s == ";" || s == "{" || s == "}" || s == "(" || s == ")") break;
    if (s == "thread") return "std::thread";
    if (s == "async") return "std::async";
  }
  if (open > begin && t[open - 1].kind == Kind::kIdent &&
      DeferredSinks().count(t[open - 1].text) != 0) {
    return t[open - 1].text;
  }
  return "";
}

/// When the lambda at `open` is the RHS of `callback_ = [...]` or a
/// `std::function` assignment, names the stored-callback sink.
std::string CallbackAssignTarget(const std::vector<Token>& t,
                                 std::size_t begin, std::size_t open) {
  if (open == begin || t[open - 1].text != "=") return "";
  std::string target;
  bool function_type = false;
  for (std::size_t b = open - 1; b-- > begin;) {
    const std::string& s = t[b].text;
    if (s == ";" || s == "{" || s == "}" || s == "(") break;
    if (t[b].kind == Kind::kIdent) {
      if (target.empty() && !IsKeyword(s)) target = s;
      if (s == "function") function_type = true;
    }
  }
  if (!target.empty() && target.back() == '_') {
    return "stored callback '" + target + "'";
  }
  if (function_type && !target.empty()) {
    return "std::function '" + target + "'";
  }
  return "";
}

/// Walks a deferred lambda's capture list [open, close) and reports
/// captures that smuggle a borrowed view past the frame: by-reference
/// captures of any tracked view (the stack slot dies), and by-value
/// captures of non-refcounted views whose storage is frame-local.
void AnalyzeLambdaCaptures(const std::vector<Token>& t, std::size_t open,
                           std::size_t close, std::size_t bb, std::size_t be,
                           const std::string& sink,
                           const std::vector<BorrowVar>& vars,
                           const ProjectIndex& index,
                           std::vector<ViewEscape>& out) {
  auto body_uses = [&](const std::string& name) {
    for (std::size_t u = bb; u < be && u > 0; ++u) {
      if (t[u].kind == Kind::kIdent && t[u].text == name &&
          t[u - 1].text != "." && t[u - 1].text != "->" &&
          t[u - 1].text != "::") {
        return true;
      }
    }
    return false;
  };
  auto report = [&](const std::string& name, const char* how, BorrowRoot root,
                    const std::string& root_name, const std::string& via,
                    int line) {
    std::string msg =
        "lambda handed to " + sink + " captures view '" + name + "' " + how;
    if (root != BorrowRoot::kUnknown) {
      msg += " (borrows from " + RootLabel(root) + " '" + root_name + "')";
    }
    msg += ViaSuffix(via);
    msg +=
        "; the borrowed bytes can die before the deferred task runs — "
        "capture an owning Sample/SamplePayload or a SampleView by value "
        "instead";
    out.push_back({std::move(msg), line});
  };
  auto skip_init = [&](std::size_t from) {
    int d2 = 0;
    std::size_t e2 = from;
    for (; e2 < close; ++e2) {
      const std::string& s2 = t[e2].text;
      if (s2 == "(" || s2 == "[" || s2 == "{" || s2 == "<") {
        ++d2;
      } else if (s2 == ")" || s2 == "]" || s2 == "}" || s2 == ">") {
        --d2;
      } else if (s2 == "," && d2 == 0) {
        break;
      }
    }
    return e2;
  };
  for (std::size_t c = open + 1; c < close; ++c) {
    const Token& ct = t[c];
    if (ct.text == "&") {
      if (c + 1 < close && t[c + 1].kind == Kind::kIdent &&
          t[c + 1].text != "this") {
        // `&name` (or `&name = expr`): a reference into this frame.
        const BorrowVar* v = LookupBorrow(vars, t[c + 1].text);
        if (v != nullptr && v->is_view) {
          report(t[c + 1].text, "by reference", v->root, v->root_name, v->via,
                 t[c + 1].line);
        }
        ++c;
        if (c + 1 < close && t[c + 1].text == "=") c = skip_init(c + 2);
        continue;
      }
      // Default &-capture: every tracked view the body touches leaks.
      for (const auto& v : vars) {
        if (v.is_view && body_uses(v.name)) {
          report(v.name, "by reference", v.root, v.root_name, v.via, ct.line);
        }
      }
      continue;
    }
    if (ct.text == "=" && (t[c - 1].text == "[" || t[c - 1].text == ",")) {
      // Default copy capture: plain (non-refcounted) views still dangle.
      for (const auto& v : vars) {
        if (v.is_view && !v.refcounted && v.root != BorrowRoot::kUnknown &&
            body_uses(v.name)) {
          report(v.name, "by value", v.root, v.root_name, v.via, ct.line);
        }
      }
      continue;
    }
    if (ct.kind != Kind::kIdent || ct.text == "this" || ct.text == "std" ||
        ct.text == "move") {
      continue;
    }
    if (c + 1 < close && t[c + 1].text == "=") {
      // Init capture `x = expr`: resolve what the initializer borrows.
      const std::size_t e2 = skip_init(c + 2);
      const std::string callee = FirstCallee(t, c + 2, e2);
      const bool opaque = !callee.empty() && callee != "move" &&
                          index.view_param_chain.count(callee) == 0;
      if (!opaque) {
        const BorrowResolution r =
            ResolveBorrow(t, c + 2, e2, vars, &index.view_param_chain);
        if (r.resolved && r.is_view_source && !r.refcounted &&
            r.root != BorrowRoot::kUnknown) {
          report(ct.text, "by value", r.root, r.root_name, r.via, ct.line);
        }
      }
      c = e2;
      continue;
    }
    // Plain copy capture of a tracked, non-refcounted view.
    const BorrowVar* v = LookupBorrow(vars, ct.text);
    if (v != nullptr && v->is_view && !v->refcounted &&
        v->root != BorrowRoot::kUnknown) {
      report(ct.text, "by value", v->root, v->root_name, v->via, ct.line);
    }
  }
}

const std::unordered_set<std::string>& MemberStoreMethods() {
  static const std::unordered_set<std::string> kMethods = {
      "push_back", "emplace_back", "insert", "emplace", "assign", "push",
  };
  return kMethods;
}

}  // namespace

std::vector<ViewEscape> FindViewEscapes(const FileTokens& file,
                                        const std::vector<ClassInfo>& classes,
                                        const std::vector<FnDef>& fns,
                                        const ProjectIndex& index) {
  const auto& t = file.tokens;
  const std::unordered_set<std::string> view_members =
      CollectViewMembers(file, classes, fns);
  std::vector<ViewEscape> out;
  for (const auto& fn : fns) {
    std::vector<BorrowVar> vars;
    ScanBorrowParams(t, fn, vars);
    int depth = 0;
    std::vector<std::string> sink_stack;  // one entry per open paren
    std::vector<std::pair<std::size_t, std::size_t>> lambda_bodies;
    for (std::size_t k = fn.body_begin; k < fn.body_end; ++k) {
      const Token& tok = t[k];
      if (tok.text == "{") {
        ++depth;
        continue;
      }
      if (tok.text == "}") {
        --depth;
        std::erase_if(vars,
                      [depth](const BorrowVar& v) { return v.depth > depth; });
        continue;
      }
      if (tok.text == "(") {
        sink_stack.push_back(SinkAt(t, fn.body_begin, k));
        continue;
      }
      if (tok.text == ")") {
        if (!sink_stack.empty()) sink_stack.pop_back();
        continue;
      }
      if (IsLambdaStart(t, k)) {
        std::size_t bb = 0, be = 0;
        const std::size_t close = LambdaBounds(t, k, fn.body_end, bb, be);
        // Deferred if handed to an enclosing sink call or stored into a
        // callback member; immediate lambdas borrow safely.
        std::string sink;
        for (auto it = sink_stack.rbegin(); it != sink_stack.rend(); ++it) {
          if (!it->empty()) {
            sink = *it;
            break;
          }
        }
        if (sink.empty()) sink = CallbackAssignTarget(t, fn.body_begin, k);
        if (!sink.empty()) {
          AnalyzeLambdaCaptures(t, k, close, bb, be, sink, vars, index, out);
        }
        if (be != 0) lambda_bodies.emplace_back(bb, be);
        k = close;  // body is walked normally for decls and stores
        continue;
      }
      if (tok.kind != Kind::kIdent) continue;

      // Returning a view rooted in function-local storage.
      if (tok.text == "return" && fn.returns_view) {
        const std::size_t e = StmtEnd(t, k + 1, fn.body_end);
        bool in_lambda = false;
        for (const auto& [lb, le] : lambda_bodies) {
          if (lb <= k && k < le) in_lambda = true;
        }
        if (!in_lambda) {
          const std::string callee = FirstCallee(t, k + 1, e);
          const bool opaque = !callee.empty() && callee != "move" &&
                              index.view_param_chain.count(callee) == 0;
          if (!opaque) {
            const BorrowResolution r =
                ResolveBorrow(t, k + 1, e, vars, &index.view_param_chain);
            if (r.resolved && r.root == BorrowRoot::kLocal && !r.refcounted) {
              out.push_back(
                  {"'" + fn.name + "' returns a view rooted in function-local "
                   "'" + r.root_name + "'" + ViaSuffix(r.via) +
                   "; the storage dies with the frame — return an owning type "
                   "or a refcounted SampleView instead",
                   tok.line});
            }
          }
        }
        k = e;
        continue;
      }

      const bool this_member =
          k >= 2 && t[k - 1].text == "->" && t[k - 2].text == "this";
      const bool plain =
          k == fn.body_begin ||
          (t[k - 1].text != "." && t[k - 1].text != "->" &&
           t[k - 1].text != "::");

      // Assignments: re-root tracked views, flag stores into members.
      if (k + 1 < fn.body_end && t[k + 1].text == "=" &&
          (plain || this_member)) {
        const std::size_t ib = k + 2;
        const std::size_t e = StmtEnd(t, ib, fn.body_end);
        const std::string callee = FirstCallee(t, ib, e);
        const bool opaque = !callee.empty() && callee != "move" &&
                            index.view_param_chain.count(callee) == 0;
        if (plain) {
          if (BorrowVar* v = LookupBorrowMut(vars, tok.text)) {
            if (v->is_view) {
              const BorrowResolution r =
                  opaque ? BorrowResolution{}
                         : ResolveBorrow(t, ib, e, vars,
                                         &index.view_param_chain);
              if (r.resolved) {
                v->root = r.root;
                v->root_name = r.root_name;
                v->via = r.via;
              } else {
                v->root = BorrowRoot::kUnknown;
                v->root_name.clear();
                v->via.clear();
              }
            }
            k = e;
            continue;
          }
        }
        if (view_members.count(tok.text) != 0) {
          if (!opaque) {
            const BorrowResolution r =
                ResolveBorrow(t, ib, e, vars, &index.view_param_chain);
            if (r.resolved && r.is_view_source && !r.refcounted &&
                r.root != BorrowRoot::kUnknown) {
              out.push_back(
                  {"view stored into member '" + tok.text + "' borrows from " +
                   RootLabel(r.root) + " '" + r.root_name + "'" +
                   ViaSuffix(r.via) +
                   "; the member outlives the borrowed storage — copy into an "
                   "owning payload or keep a refcounted SampleView",
                   tok.line});
            }
          }
          k = e;
          continue;
        }
        continue;  // untracked LHS: keep walking (the RHS may hold a lambda)
      }

      // Container members: views_.push_back(v) escapes the frame too.
      if ((plain || this_member) && k + 3 < fn.body_end &&
          view_members.count(tok.text) != 0 &&
          (t[k + 1].text == "." || t[k + 1].text == "->") &&
          MemberStoreMethods().count(t[k + 2].text) != 0 &&
          t[k + 3].text == "(") {
        const std::size_t e = MatchForward(t, k + 3);
        const std::string callee = FirstCallee(t, k + 4, e);
        const bool opaque = !callee.empty() && callee != "move" &&
                            index.view_param_chain.count(callee) == 0;
        if (!opaque) {
          const BorrowResolution r =
              ResolveBorrow(t, k + 4, e, vars, &index.view_param_chain);
          if (r.resolved && r.is_view_source && !r.refcounted &&
              r.root != BorrowRoot::kUnknown) {
            out.push_back(
                {"view stored into container member '" + tok.text +
                 "' borrows from " + RootLabel(r.root) + " '" + r.root_name +
                 "'" + ViaSuffix(r.via) +
                 "; the container outlives the borrowed storage — store an "
                 "owning payload or a refcounted SampleView",
                 tok.line});
          }
        }
        k = e;
        continue;
      }

      // Declarations seed / extend the borrow scope.
      const std::size_t nm = ScanBorrowDecl(t, k, fn.body_begin, fn.body_end,
                                            depth, vars,
                                            &index.view_param_chain);
      if (nm != 0) k = nm;
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Use-after-move.

const std::unordered_set<std::string>& MoveTrackedTypes() {
  static const std::unordered_set<std::string> kTypes = {
      // SampleView is deliberately absent: a moved-from view is just
      // empty, and views are cheap to copy anyway.
      "Sample", "SamplePayload", "PayloadWriter",
  };
  return kTypes;
}

namespace {

/// A move-tracked type spelled at `i` (named types above, plus
/// std::vector<std::byte> structurally).
bool MatchMoveType(const std::vector<Token>& t, std::size_t i,
                   std::string& label, std::size_t& last) {
  if (t[i].kind != Kind::kIdent) return false;
  if (MoveTrackedTypes().count(t[i].text) != 0) {
    label = t[i].text;
    last = i;
    return true;
  }
  if (t[i].text == "vector" && i + 5 < t.size() && t[i + 1].text == "<" &&
      t[i + 2].text == "std" && t[i + 3].text == "::" &&
      t[i + 4].text == "byte" && t[i + 5].text == ">") {
    label = "std::vector<std::byte>";
    last = i + 5;
    return true;
  }
  return false;
}

struct MoveVar {
  std::string name;
  std::string type;
  int depth = 0;
  bool moved = false;
  int move_depth = 0;
};

MoveVar* LookupMove(std::vector<MoveVar>& vars, const std::string& name) {
  for (auto it = vars.rbegin(); it != vars.rend(); ++it) {
    if (it->name == name) return &*it;
  }
  return nullptr;
}

}  // namespace

std::vector<MovedUse> FindUseAfterMove(const FileTokens& file,
                                       const std::vector<FnDef>& fns) {
  const auto& t = file.tokens;
  std::vector<MovedUse> out;
  for (const auto& fn : fns) {
    std::vector<MoveVar> vars;
    // Parameters: only mutable by-value / rvalue ones can be moved from.
    {
      std::size_t p = fn.params_begin + 1;
      while (p < fn.params_end) {
        std::size_t q = p;
        int pd = 0, angle = 0;
        for (; q < fn.params_end; ++q) {
          const std::string& s = t[q].text;
          if (s == "(" || s == "[" || s == "{") {
            ++pd;
          } else if (s == ")" || s == "]" || s == "}") {
            --pd;
          } else if (s == "<") {
            ++angle;
          } else if (s == ">") {
            --angle;
          } else if (s == ">>") {
            angle -= 2;
          } else if (s == "," && pd == 0 && angle <= 0) {
            break;
          }
        }
        std::string label;
        std::size_t last = 0;
        bool matched = false, is_const = false;
        for (std::size_t i = p; i < q; ++i) {
          if (t[i].text == "const") is_const = true;
          if (!matched && MatchMoveType(t, i, label, last)) matched = true;
        }
        if (matched && !is_const) {
          std::string pname;
          for (std::size_t i = last + 1; i < q; ++i) {
            if (t[i].text == "=") break;
            if (t[i].kind == Kind::kIdent && !IsKeyword(t[i].text)) {
              pname = t[i].text;
            }
          }
          if (!pname.empty()) vars.push_back({pname, label, 0, false, 0});
        }
        p = q + 1;
      }
    }
    int depth = 0;
    for (std::size_t k = fn.body_begin; k < fn.body_end; ++k) {
      const Token& tok = t[k];
      if (tok.text == "{") {
        ++depth;
        continue;
      }
      if (tok.text == "}") {
        --depth;
        for (auto& v : vars) {
          // A move inside a conditional block doesn't hold past it.
          if (v.moved && v.move_depth > depth) v.moved = false;
        }
        std::erase_if(vars,
                      [depth](const MoveVar& v) { return v.depth > depth; });
        continue;
      }
      if (tok.kind != Kind::kIdent) continue;
      // std::move(name)
      if (tok.text == "std" && k + 5 < fn.body_end && t[k + 1].text == "::" &&
          t[k + 2].text == "move" && t[k + 3].text == "(" &&
          t[k + 4].kind == Kind::kIdent && t[k + 5].text == ")") {
        if (MoveVar* v = LookupMove(vars, t[k + 4].text)) {
          if (v->moved) {
            out.push_back({"'" + v->name + "' (" + v->type +
                               ") is moved from twice; the first std::move "
                               "already emptied it",
                           t[k + 4].line});
          }
          v->moved = true;
          v->move_depth = depth;
        }
        k += 5;
        continue;
      }
      // Declarations.
      {
        std::string label;
        std::size_t last = 0;
        if (MatchMoveType(t, k, label, last) && last + 1 < fn.body_end &&
            t[last + 1].kind == Kind::kIdent && !IsKeyword(t[last + 1].text) &&
            (k == fn.body_begin ||
             (t[k - 1].text != "." && t[k - 1].text != "->" &&
              t[k - 1].text != "new" && t[k - 1].text != "<"))) {
          const std::string& nx =
              last + 2 < fn.body_end ? t[last + 2].text : t[fn.body_end].text;
          if (nx == ";" || nx == "=" || nx == "(" || nx == "{" || nx == ":") {
            vars.push_back({t[last + 1].text, label, depth, false, 0});
            k = last + 1;
            continue;
          }
        }
      }
      // Uses.
      if (k > fn.body_begin &&
          (t[k - 1].text == "." || t[k - 1].text == "->" ||
           t[k - 1].text == "::")) {
        continue;
      }
      MoveVar* v = LookupMove(vars, tok.text);
      if (v == nullptr || !v->moved) continue;
      const std::string& nx = t[k + 1].text;  // tokens end with kEof
      if (nx == "=") {
        v->moved = false;  // reassignment refills it
        continue;
      }
      if ((nx == "." || nx == "->") && k + 2 < fn.body_end &&
          (t[k + 2].text == "reset" || t[k + 2].text == "clear" ||
           t[k + 2].text == "assign")) {
        v->moved = false;
        continue;
      }
      out.push_back({"'" + v->name + "' (" + v->type +
                         ") is used after being moved from; reassign or "
                         "reset it before reuse",
                     tok.line});
      v->moved = false;  // one report per move
    }
  }
  return out;
}

namespace {

/// Fixpoint propagation shared by the blocking and allocation closures:
/// a caller inherits the (already-chained) witness of the first tainted
/// resolvable callee, prefixed with its own name.
void PropagateChains(
    const std::unordered_map<std::string, std::vector<FnDef>>& fns,
    std::unordered_map<std::string, std::string>& chain) {
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& [name, defs] : fns) {
      if (chain.count(name) != 0) continue;
      for (const auto& def : defs) {
        for (const auto& call : def.calls) {
          if (call.name == name || !CrossTuResolvable(call.name)) continue;
          if (fns.count(call.name) == 0) continue;
          const auto it = chain.find(call.name);
          if (it != chain.end()) {
            chain[name] = name + " -> " + it->second;
            changed = true;
            break;
          }
        }
        if (chain.count(name) != 0) break;
      }
    }
  }
}

}  // namespace

int ProjectIndex::RankOf(const std::string& key,
                         const std::string& bare_name) const {
  if (!key.empty()) {
    const auto it = mutex_ranks.find(key);
    if (it != mutex_ranks.end()) return it->second;
  }
  if (ambiguous_mutex_names.count(bare_name) == 0) {
    const auto it = mutex_ranks.find(bare_name);
    if (it != mutex_ranks.end()) return it->second;
  }
  return -1;
}

void FinalizeIndex(ProjectIndex& index) {
  // Resolve mutex declarations to numeric ranks; aggregate bare member
  // names across classes, marking collisions ambiguous so RankOf never
  // guesses between e.g. TieringObject::mu_ (kStage) and
  // PageCacheModel::mu_ (kPageCache).
  std::unordered_map<std::string, std::unordered_set<int>> bare;
  for (const auto& [key, names] : index.raw_mutex_decls) {
    std::unordered_set<int> vals;
    for (const auto& n : names) {
      const auto it = index.rank_values.find(n);
      vals.insert(it == index.rank_values.end() ? -1 : it->second);
    }
    if (vals.size() == 1) {
      const int v = *vals.begin();
      if (v >= 0) index.mutex_ranks[key] = v;
      const std::size_t sep = key.rfind("::");
      const std::string member =
          sep == std::string::npos ? key : key.substr(sep + 2);
      bare[member].insert(v);
    }
  }
  for (const auto& [member, vals] : bare) {
    if (index.mutex_ranks.count(member) != 0) continue;  // already a key
    if (vals.size() == 1 && *vals.begin() >= 0) {
      index.mutex_ranks[member] = *vals.begin();
    } else if (vals.size() > 1) {
      index.ambiguous_mutex_names.insert(member);
    }
  }

  // A name only counts as Status-returning when every declaration of
  // that name in the project agrees (name-keyed ⇒ overload-blind).
  for (const auto& n : index.nonstatus_fns) index.status_fns.erase(n);

  // Blocking and allocation closures over the name-keyed call graph:
  // seed from the primitive sites, then propagate caller -> callee to a
  // fixpoint, prefixing caller names so every entry is a full witness
  // chain back to a primitive (e.g. "Take -> RefillSlow -> operator
  // new").
  for (const auto& [name, defs] : index.fns) {
    for (const auto& def : defs) {
      if (def.hot_path) index.hot_fns.insert(name);
      if (!def.blocking.empty() && index.blocking_chain.count(name) == 0) {
        index.blocking_chain[name] = name + " -> " + def.blocking[0].name;
      }
      if (!def.allocs.empty() && index.alloc_chain.count(name) == 0) {
        index.alloc_chain[name] = name + " -> " + def.allocs[0].name;
      }
    }
  }
  PropagateChains(index.fns, index.blocking_chain);
  PropagateChains(index.fns, index.alloc_chain);

  // Borrows-from-param closure (view-escape): seed from functions that
  // directly return a view of a parameter, then walk `return Helper(p)`
  // edges to a fixpoint so escapes through helpers carry full witness
  // chains, e.g. "Window -> Trim returns a view of its parameter 's'".
  for (const auto& [name, defs] : index.fns) {
    for (const auto& def : defs) {
      if (!def.view_of_param.empty()) {
        index.view_param_chain.emplace(name, def.view_of_param);
        break;
      }
    }
  }
  bool vchanged = true;
  while (vchanged) {
    vchanged = false;
    for (const auto& [name, defs] : index.fns) {
      if (index.view_param_chain.count(name) != 0) continue;
      for (const auto& def : defs) {
        for (const auto& callee : def.view_return_param_calls) {
          if (callee == name) continue;
          const auto it = index.view_param_chain.find(callee);
          if (it == index.view_param_chain.end()) continue;
          index.view_param_chain[name] = name + " -> " + it->second;
          vchanged = true;
          break;
        }
        if (index.view_param_chain.count(name) != 0) break;
      }
    }
  }

  // Effective acquisition ranks, to a fixpoint.
  for (const auto& [name, defs] : index.fns) {
    for (const auto& def : defs) {
      for (const auto& a : def.acquires) {
        const int r = index.RankOf(a.lookup_key, a.mutex_name);
        if (r < 0) continue;
        auto& m = index.effective_ranks[name];
        if (m.count(r) == 0) m[r] = name + " locks " + a.mutex_name;
      }
    }
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& [name, defs] : index.fns) {
      for (const auto& def : defs) {
        for (const auto& call : def.calls) {
          if (call.name == name || !CrossTuResolvable(call.name)) continue;
          if (index.fns.count(call.name) == 0) continue;
          const auto it = index.effective_ranks.find(call.name);
          if (it == index.effective_ranks.end()) continue;
          const auto src = it->second;  // copy: inserts below may rehash
          auto& m = index.effective_ranks[name];
          for (const auto& [r, chain] : src) {
            if (m.count(r) == 0) {
              m[r] = name + " -> " + chain;
              changed = true;
            }
          }
        }
      }
    }
  }
}

}  // namespace prisma_lint
