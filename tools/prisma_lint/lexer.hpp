// prisma-lint tokenizer: a deliberately small C++ lexer.
//
// The linter does not parse C++ — it pattern-matches token runs, which
// is enough for project-invariant checks (see checks.hpp) and keeps the
// tool free of libclang so it builds wherever a C++20 compiler exists
// (gcc CI runners included). The lexer therefore only has to get four
// things exactly right, because getting them wrong produces phantom
// findings: comments (kept aside, they carry suppressions), string and
// character literals (may contain "std::mutex"), raw strings, and
// preprocessor lines (macro bodies are not code the checks should see).
#pragma once

#include <cstddef>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

namespace prisma_lint {

struct Token {
  enum class Kind { kIdent, kNumber, kString, kChar, kPunct, kEof };
  Kind kind = Kind::kEof;
  std::string text;
  int line = 0;  // 1-based
};

/// One lexed file: code tokens with comments/preprocessor stripped, plus
/// the comment text per line so checks can honor suppression markers (a
/// `prisma-lint` comment naming the allowed check — see DESIGN.md §11.2
/// for the exact forms; spelling one out here would read as a live
/// marker to the stale-suppression scanner).
struct FileTokens {
  std::string path;                              // path as given to the driver
  std::vector<Token> tokens;                     // ends with a kEof token
  std::unordered_map<int, std::string> comments; // line -> concatenated text
  std::set<int> comment_only_lines;              // lines holding only comments

  /// Comment text attached to `line` (empty when none).
  const std::string& CommentAt(int line) const;
};

/// Lexes `source`; never fails (unterminated constructs end at EOF).
FileTokens Lex(std::string path, const std::string& source);

}  // namespace prisma_lint
