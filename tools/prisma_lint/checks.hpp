// The ten PRISMA project-invariant checks. Each takes one lexed target
// file (plus the cross-TU index where needed) and appends findings.
// Check names are stable identifiers: they appear in findings, baseline
// fingerprints, suppression comments, and --checks filters.
#pragma once

#include <string>
#include <vector>

#include "analysis.hpp"
#include "lexer.hpp"

namespace prisma_lint {

inline constexpr const char* kNoRawSync = "no-raw-sync";
inline constexpr const char* kNoBlockingUnderLock = "no-blocking-under-lock";
inline constexpr const char* kGuardedByCoverage = "guarded-by-coverage";
inline constexpr const char* kStatusChecked = "status-checked";
inline constexpr const char* kLockRankStatic = "lock-rank-static";
inline constexpr const char* kHotPathPurity = "hot-path-purity";
inline constexpr const char* kNoPayloadCopy = "no-payload-copy";
inline constexpr const char* kViewEscape = "view-escape";
inline constexpr const char* kUseAfterMove = "use-after-move";
inline constexpr const char* kCvWaitPredicate = "cv-wait-predicate";

/// Reserved reporting name for dead `prisma-lint: allow(...)` markers
/// and baseline fingerprints (see FindStaleSuppressions). Not a check:
/// it cannot be enabled, suppressed, or baselined.
inline constexpr const char* kStaleSuppression = "stale-suppression";

/// All check names, in reporting order.
const std::vector<std::string>& AllChecks();

/// (1) std::mutex / std::condition_variable / std::lock_guard /
/// std::unique_lock / pthread primitives are forbidden outside
/// src/common/mutex.{hpp,cpp}; synchronization goes through the ranked
/// prisma::Mutex so both the TSA annotations and the runtime lock-order
/// validator see every acquisition.
void CheckNoRawSync(const FileTokens& file, std::vector<Finding>& out);

/// (2) No blocking syscall / sleep / file-stream I/O — direct or via a
/// call chain that reaches one — while a MutexLock is live.
void CheckNoBlockingUnderLock(const FileTokens& file,
                              const std::vector<FnDef>& fns,
                              const ProjectIndex& index,
                              std::vector<Finding>& out);

/// (3) Mutable data members of classes that own a prisma::Mutex must
/// carry GUARDED_BY/PT_GUARDED_BY or an explicit
/// `// prisma-lint: unguarded(<reason>)` suppression.
void CheckGuardedByCoverage(const FileTokens& file,
                            const std::vector<ClassInfo>& classes,
                            std::vector<Finding>& out);

/// (4) Results of Status/Result<T>-returning calls must be consumed;
/// bare `(void)` casts are rejected in favor of
/// PRISMA_IGNORE_STATUS(expr, reason).
void CheckStatusChecked(const FileTokens& file, const std::vector<FnDef>& fns,
                        const ProjectIndex& index, std::vector<Finding>& out);

/// (5) Static complement of the runtime lock-order validator: a
/// MutexLock acquisition (direct, or anywhere down the approximate call
/// graph) of rank >= a held rank is a potential inversion. Equal ranks
/// are skipped — same-rank nesting is legal in construction order,
/// which only the runtime validator can decide.
void CheckLockRankStatic(const FileTokens& file, const std::vector<FnDef>& fns,
                         const ProjectIndex& index, std::vector<Finding>& out);

/// (6) A PRISMA_HOT_PATH function must not allocate or block — directly
/// or through any call chain in the cross-TU graph. Findings print the
/// full witness chain ("Take -> RefillSlow -> operator new"). Calls to
/// other PRISMA_HOT_PATH functions are trusted (audited at their own
/// definition); deliberate steady-state allocations carry a reasoned
/// allow(hot-path-purity, ...) at the site.
void CheckHotPathPurity(const FileTokens& file, const std::vector<FnDef>& fns,
                        const ProjectIndex& index, std::vector<Finding>& out);

/// (7) Heavy payload types (Sample, SamplePayload, SampleView,
/// std::vector<std::byte> buffers) must not be copied: by-value
/// parameters, copy-initialization from an lvalue (range-for included),
/// and lambda capture-by-copy are flagged project-wide. This freezes
/// the zero-copy data plane's one-copy-per-payload-byte guarantee.
void CheckNoPayloadCopy(const FileTokens& file, const std::vector<FnDef>& fns,
                        std::vector<Finding>& out);

/// (8) A borrowed view (SampleView, std::span, std::string_view, raw
/// byte pointers) must not outlive the storage it points into: no
/// returning a view rooted in a function-local owner, no storing a view
/// into a member (or member container) that outlives the frame, and no
/// handing a lambda that captures a view by reference — or a
/// non-refcounted view by value — to ThreadPool / BoundedQueue /
/// std::thread / a stored callback. Borrows through helper calls are
/// resolved via the borrows-from-param closure, so findings carry full
/// witness chains.
void CheckViewEscape(const FileTokens& file,
                     const std::vector<ClassInfo>& classes,
                     const std::vector<FnDef>& fns, const ProjectIndex& index,
                     std::vector<Finding>& out);

/// (9) A moved-from Sample / SamplePayload / PayloadWriter /
/// std::vector<std::byte> local or parameter must be reassigned or
/// reset before any other use.
void CheckUseAfterMove(const FileTokens& file, const std::vector<FnDef>& fns,
                       std::vector<Finding>& out);

/// (10) Every CondVar::Wait / WaitUntil / WaitFor call must sit inside
/// a loop that re-checks its condition (`while (!ready) cv.Wait(mu);`):
/// a naked wait loses wakeups to spurious returns and missed notifies.
void CheckCvWaitPredicate(const FileTokens& file,
                          const std::vector<FnDef>& fns,
                          std::vector<Finding>& out);

}  // namespace prisma_lint
