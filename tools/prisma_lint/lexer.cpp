#include "lexer.hpp"

#include <cctype>

namespace prisma_lint {
namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Multi-character punctuators the checks care about distinguishing.
/// Everything else falls back to a single character. Maximal munch over
/// this small set is enough: the checks only look at ::, ->, ., and the
/// shift/compare operators well enough to not split them mid-token.
const char* const kPuncts[] = {
    "<<=", ">>=", "...", "->*", "::", "->", "<<", ">>", "<=", ">=", "==",
    "!=", "&&", "||", "++", "--", "+=", "-=", "*=", "/=", "%=", "&=",
    "|=", "^=", ".*",
};

}  // namespace

const std::string& FileTokens::CommentAt(int line) const {
  static const std::string kEmpty;
  const auto it = comments.find(line);
  return it == comments.end() ? kEmpty : it->second;
}

FileTokens Lex(std::string path, const std::string& src) {
  FileTokens out;
  out.path = std::move(path);
  std::size_t i = 0;
  const std::size_t n = src.size();
  int line = 1;
  // Tracks whether the current source line produced any code token, so
  // comment-only lines can be identified (suppressions on the line
  // above a statement live on such lines).
  int last_code_line = 0;

  auto add_comment = [&](int at, const std::string& text) {
    auto& slot = out.comments[at];
    if (!slot.empty()) slot += ' ';
    slot += text;
    if (at != last_code_line) out.comment_only_lines.insert(at);
  };

  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Line comment.
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      const std::size_t start = i + 2;
      while (i < n && src[i] != '\n') ++i;
      add_comment(line, src.substr(start, i - start));
      continue;
    }
    // Block comment (may span lines; text is attached to its first line,
    // which is where suppressions are written).
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      const int at = line;
      const std::size_t start = i + 2;
      i += 2;
      while (i + 1 < n && !(src[i] == '*' && src[i + 1] == '/')) {
        if (src[i] == '\n') ++line;
        ++i;
      }
      add_comment(at, src.substr(start, (i < n ? i : n) - start));
      i = (i + 1 < n) ? i + 2 : n;
      continue;
    }
    // Preprocessor line: skip entirely, honoring \-continuations. Macro
    // bodies are expanded at call sites the linter cannot see; lexing
    // them as code would double-count or miscount constructs.
    if (c == '#') {
      while (i < n) {
        if (src[i] == '\\' && i + 1 < n && src[i + 1] == '\n') {
          ++line;
          i += 2;
          continue;
        }
        if (src[i] == '\n') break;
        // Comments inside preprocessor lines still end the directive at
        // the right place and may span lines (block form).
        if (src[i] == '/' && i + 1 < n && src[i + 1] == '*') {
          i += 2;
          while (i + 1 < n && !(src[i] == '*' && src[i + 1] == '/')) {
            if (src[i] == '\n') ++line;
            ++i;
          }
          i = (i + 1 < n) ? i + 2 : n;
          continue;
        }
        if (src[i] == '/' && i + 1 < n && src[i + 1] == '/') {
          while (i < n && src[i] != '\n') ++i;
          break;
        }
        ++i;
      }
      continue;
    }
    // Raw string literal: R"delim( ... )delim".
    if (c == 'R' && i + 1 < n && src[i + 1] == '"') {
      std::size_t j = i + 2;
      std::string delim;
      while (j < n && src[j] != '(') delim += src[j++];
      const std::string closer = ")" + delim + "\"";
      const std::size_t body = j + 1;
      std::size_t end = src.find(closer, body);
      if (end == std::string::npos) end = n;
      const int at = line;
      for (std::size_t k = i; k < end && k < n; ++k) {
        if (src[k] == '\n') ++line;
      }
      out.tokens.push_back({Token::Kind::kString,
                            src.substr(i, std::min(end + closer.size(), n) - i),
                            at});
      last_code_line = line;
      i = std::min(end + closer.size(), n);
      continue;
    }
    // String / char literal.
    if (c == '"' || c == '\'') {
      const char quote = c;
      const std::size_t start = i;
      ++i;
      while (i < n && src[i] != quote) {
        if (src[i] == '\\' && i + 1 < n) ++i;
        if (src[i] == '\n') ++line;  // unterminated; tolerate
        ++i;
      }
      if (i < n) ++i;  // closing quote
      out.tokens.push_back(
          {quote == '"' ? Token::Kind::kString : Token::Kind::kChar,
           src.substr(start, i - start), line});
      last_code_line = line;
      continue;
    }
    // Number (loose: consumes hex/float/suffix forms well enough).
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(src[i + 1])))) {
      const std::size_t start = i;
      while (i < n && (IsIdentChar(src[i]) || src[i] == '.' ||
                       ((src[i] == '+' || src[i] == '-') && i > start &&
                        (src[i - 1] == 'e' || src[i - 1] == 'E' ||
                         src[i - 1] == 'p' || src[i - 1] == 'P')))) {
        ++i;
      }
      out.tokens.push_back({Token::Kind::kNumber, src.substr(start, i - start), line});
      last_code_line = line;
      continue;
    }
    // Identifier / keyword.
    if (IsIdentStart(c)) {
      const std::size_t start = i;
      while (i < n && IsIdentChar(src[i])) ++i;
      out.tokens.push_back({Token::Kind::kIdent, src.substr(start, i - start), line});
      last_code_line = line;
      continue;
    }
    // Punctuation, maximal munch over the known multi-char set.
    {
      std::string text(1, c);
      for (const char* p : kPuncts) {
        const std::size_t len = std::char_traits<char>::length(p);
        if (src.compare(i, len, p) == 0) {
          text = p;
          break;
        }
      }
      out.tokens.push_back({Token::Kind::kPunct, text, line});
      last_code_line = line;
      i += text.size();
    }
  }
  out.tokens.push_back({Token::Kind::kEof, "", line});
  return out;
}

}  // namespace prisma_lint
