#include "driver.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <unordered_set>

#include "checks.hpp"

namespace prisma_lint {
namespace {

namespace fs = std::filesystem;

bool ReadFile(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

/// Paths the walker never lints: generated/build trees and the lint
/// fixtures (which contain violations on purpose).
bool IsExcluded(const std::string& path) {
  return path.find("/build") != std::string::npos ||
         path.find("lint_fixtures") != std::string::npos ||
         path.find("/.git/") != std::string::npos;
}

bool IsSourceExt(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".cc" || ext == ".cxx" || ext == ".hpp" ||
         ext == ".h";
}

/// Minimal JSON string scanner for compile_commands.json: pulls the
/// value following each `"file":` (and `"directory":`, to resolve
/// relative entries). The format CMake emits is regular enough that a
/// full JSON parser would be dead weight.
std::string ParseJsonString(const std::string& s, std::size_t& i) {
  std::string out;
  for (++i; i < s.size() && s[i] != '"'; ++i) {
    if (s[i] == '\\' && i + 1 < s.size()) {
      ++i;
      switch (s[i]) {
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        default: out += s[i];
      }
      continue;
    }
    out += s[i];
  }
  return out;
}

}  // namespace

std::vector<std::string> ReadCompileCommands(const std::string& path) {
  std::string text;
  std::vector<std::string> out;
  if (!ReadFile(path, text)) return out;
  std::set<std::string> seen;
  std::string directory;
  for (std::size_t i = 0; i + 1 < text.size(); ++i) {
    if (text[i] != '"') continue;
    std::size_t j = i;
    const std::string key = ParseJsonString(text, j);
    i = j;
    if (key != "file" && key != "directory") continue;
    // Skip to the value string after the ':'.
    while (j < text.size() && text[j] != '"' && text[j] != '}') ++j;
    if (j >= text.size() || text[j] != '"') continue;
    const std::string value = ParseJsonString(text, j);
    i = j;
    if (key == "directory") {
      directory = value;
      continue;
    }
    fs::path p(value);
    if (p.is_relative() && !directory.empty()) p = fs::path(directory) / p;
    std::error_code ec;
    const fs::path canon = fs::weakly_canonical(p, ec);
    const std::string str = ec ? p.string() : canon.string();
    if (IsExcluded(str) || !IsSourceExt(p)) continue;
    if (seen.insert(str).second) out.push_back(str);
  }
  return out;
}

std::vector<std::string> GlobSources(const std::string& dir) {
  std::vector<std::string> out;
  std::error_code ec;
  for (fs::recursive_directory_iterator it(dir, ec), end; !ec && it != end;
       it.increment(ec)) {
    if (!it->is_regular_file(ec)) continue;
    const std::string path = it->path().string();
    if (IsExcluded(path) || !IsSourceExt(it->path())) continue;
    out.push_back(path);
  }
  std::sort(out.begin(), out.end());
  return out;
}

namespace {

std::vector<std::string> LoadBaseline(const std::string& path) {
  std::vector<std::string> out;
  std::string text;
  if (!ReadFile(path, text)) return out;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    // Entries may carry a trailing reason comment: `fingerprint  # why`.
    const std::size_t hash = line.find('#');
    std::string entry =
        hash == std::string::npos ? line : line.substr(0, hash);
    while (!entry.empty() && (entry.back() == ' ' || entry.back() == '\t')) {
      entry.pop_back();
    }
    if (!entry.empty()) out.push_back(entry);
  }
  return out;
}

}  // namespace

RunResult Run(const Options& options) {
  RunResult result;

  // Assemble the index set: every file whose declarations feed the
  // cross-TU state, and (by default) the lint targets themselves.
  std::vector<std::string> index_files;
  std::set<std::string> seen;
  auto add = [&](const std::string& p) {
    if (seen.insert(p).second) index_files.push_back(p);
  };
  if (!options.compdb.empty()) {
    for (const auto& f : ReadCompileCommands(options.compdb)) add(f);
  }
  if (!options.root.empty()) {
    // Headers are not TUs, so the compdb never lists them; glob the
    // trees that hold project headers.
    for (const char* sub : {"src", "tools", "tests", "bench", "examples"}) {
      const fs::path dir = fs::path(options.root) / sub;
      std::error_code ec;
      if (!fs::is_directory(dir, ec)) continue;
      for (const auto& f : GlobSources(dir.string())) add(f);
    }
  }
  for (const auto& f : options.index_extra) add(f);
  for (const auto& f : options.targets) add(f);

  std::vector<std::string> targets = options.targets;
  if (targets.empty()) targets = index_files;

  // Pass 1: lex everything once, build the project index.
  ProjectIndex index;
  std::unordered_map<std::string, FileTokens> lexed;
  std::unordered_map<std::string, std::vector<ClassInfo>> classes;
  for (const auto& path : index_files) {
    std::string text;
    if (!ReadFile(path, text)) {
      result.errors.push_back("cannot read " + path);
      continue;
    }
    auto file = Lex(path, text);
    auto cls = ScanClasses(file);
    IndexDeclarations(file, cls, index);
    for (auto& def : ScanFunctions(file, cls, nullptr)) {
      index.fns[def.name].push_back(std::move(def));
    }
    classes.emplace(path, std::move(cls));
    lexed.emplace(path, std::move(file));
  }
  FinalizeIndex(index);

  // Pass 2: lint the targets with full cross-TU context.
  std::unordered_set<std::string> enabled(options.checks.begin(),
                                          options.checks.end());
  auto on = [&](const char* name) {
    return enabled.empty() || enabled.count(name) != 0;
  };
  std::vector<Finding> findings;
  for (const auto& path : targets) {
    const auto it = lexed.find(path);
    if (it == lexed.end()) continue;  // read error already recorded
    const FileTokens& file = it->second;
    const auto& cls = classes.at(path);
    const auto fns = ScanFunctions(file, cls, &index);
    if (on(kNoRawSync)) CheckNoRawSync(file, findings);
    if (on(kNoBlockingUnderLock)) {
      CheckNoBlockingUnderLock(file, fns, index, findings);
    }
    if (on(kGuardedByCoverage)) CheckGuardedByCoverage(file, cls, findings);
    if (on(kStatusChecked)) CheckStatusChecked(file, fns, index, findings);
    if (on(kLockRankStatic)) CheckLockRankStatic(file, fns, index, findings);
  }

  // Baseline filter.
  std::vector<std::string> baseline;
  if (!options.baseline.empty()) baseline = LoadBaseline(options.baseline);
  const std::set<std::string> base_set(baseline.begin(), baseline.end());
  for (auto& f : findings) {
    if (base_set.count(f.Fingerprint()) != 0) {
      ++result.baselined;
      continue;
    }
    result.findings.push_back(std::move(f));
  }
  std::sort(result.findings.begin(), result.findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.message < b.message;
            });
  return result;
}

}  // namespace prisma_lint
