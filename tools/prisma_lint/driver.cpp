#include "driver.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <thread>
#include <unordered_set>

#include "checks.hpp"

namespace prisma_lint {
namespace {

namespace fs = std::filesystem;

bool ReadFile(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

/// Paths the walker never lints: generated/build trees and the lint
/// fixtures (which contain violations on purpose).
bool IsExcluded(const std::string& path) {
  return path.find("/build") != std::string::npos ||
         path.find("lint_fixtures") != std::string::npos ||
         path.find("/.git/") != std::string::npos;
}

bool IsSourceExt(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".cc" || ext == ".cxx" || ext == ".hpp" ||
         ext == ".h";
}

/// Minimal JSON string scanner for compile_commands.json: pulls the
/// value following each `"file":` (and `"directory":`, to resolve
/// relative entries). The format CMake emits is regular enough that a
/// full JSON parser would be dead weight.
std::string ParseJsonString(const std::string& s, std::size_t& i) {
  std::string out;
  for (++i; i < s.size() && s[i] != '"'; ++i) {
    if (s[i] == '\\' && i + 1 < s.size()) {
      ++i;
      switch (s[i]) {
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        default: out += s[i];
      }
      continue;
    }
    out += s[i];
  }
  return out;
}

}  // namespace

std::vector<std::string> ReadCompileCommands(const std::string& path) {
  std::string text;
  std::vector<std::string> out;
  if (!ReadFile(path, text)) return out;
  std::set<std::string> seen;
  std::string directory;
  for (std::size_t i = 0; i + 1 < text.size(); ++i) {
    if (text[i] != '"') continue;
    std::size_t j = i;
    const std::string key = ParseJsonString(text, j);
    i = j;
    if (key != "file" && key != "directory") continue;
    // Skip to the value string after the ':'.
    while (j < text.size() && text[j] != '"' && text[j] != '}') ++j;
    if (j >= text.size() || text[j] != '"') continue;
    const std::string value = ParseJsonString(text, j);
    i = j;
    if (key == "directory") {
      directory = value;
      continue;
    }
    fs::path p(value);
    if (p.is_relative() && !directory.empty()) p = fs::path(directory) / p;
    std::error_code ec;
    const fs::path canon = fs::weakly_canonical(p, ec);
    const std::string str = ec ? p.string() : canon.string();
    if (IsExcluded(str) || !IsSourceExt(p)) continue;
    if (seen.insert(str).second) out.push_back(str);
  }
  return out;
}

std::vector<std::string> GlobSources(const std::string& dir) {
  std::vector<std::string> out;
  std::error_code ec;
  for (fs::recursive_directory_iterator it(dir, ec), end; !ec && it != end;
       it.increment(ec)) {
    if (!it->is_regular_file(ec)) continue;
    const std::string path = it->path().string();
    if (IsExcluded(path) || !IsSourceExt(it->path())) continue;
    out.push_back(path);
  }
  std::sort(out.begin(), out.end());
  return out;
}

namespace {

/// Baseline entries as fingerprint -> occurrence count. Fingerprints
/// strip line numbers, so two real instances of the same pattern in one
/// basename produce IDENTICAL fingerprints; counting (rather than
/// set-matching) keeps a second instance from hiding behind a baseline
/// line that absorbed the first. An entry absorbs one occurrence per
/// line it appears on, or `xN` at the end of the line absorbs N.
std::map<std::string, std::size_t> LoadBaseline(const std::string& path) {
  std::map<std::string, std::size_t> out;
  std::string text;
  if (!ReadFile(path, text)) return out;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    // Entries may carry a trailing reason comment: `fingerprint  # why`.
    const std::size_t hash = line.find('#');
    std::string entry =
        hash == std::string::npos ? line : line.substr(0, hash);
    while (!entry.empty() && (entry.back() == ' ' || entry.back() == '\t')) {
      entry.pop_back();
    }
    if (entry.empty()) continue;
    std::size_t count = 1;
    const std::size_t sp = entry.find_last_of(" \t");
    if (sp != std::string::npos && sp + 1 < entry.size() &&
        entry[sp + 1] == 'x') {
      const std::string suffix = entry.substr(sp + 2);
      if (!suffix.empty() &&
          suffix.find_first_not_of("0123456789") == std::string::npos) {
        count = static_cast<std::size_t>(std::stoul(suffix));
        entry = entry.substr(0, sp);
        while (!entry.empty() &&
               (entry.back() == ' ' || entry.back() == '\t')) {
          entry.pop_back();
        }
      }
    }
    if (!entry.empty()) out[entry] += count;
  }
  return out;
}

/// Runs fn(0..n-1) across `jobs` threads claiming indices from a shared
/// atomic counter. No locks: each index owns a private result slot, and
/// the join is the only synchronization (deliberate — the linter is
/// standalone and its own no-raw-sync check covers this tree).
template <typename Fn>
void ParallelFor(std::size_t n, int jobs, Fn&& fn) {
  const std::size_t workers =
      std::min<std::size_t>(n, jobs < 1 ? 1 : static_cast<std::size_t>(jobs));
  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  auto work = [&next, n, &fn] {
    for (std::size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
      fn(i);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (std::size_t w = 0; w + 1 < workers; ++w) pool.emplace_back(work);
  work();
  for (auto& th : pool) th.join();
}

/// Per-file pass-1 result: lexed tokens, classes, index-less function
/// scan, and the file's declaration contributions (collected into a
/// private index so the fan-out never touches shared state).
struct FileScan {
  bool ok = false;
  FileTokens file;
  std::vector<ClassInfo> classes;
  std::vector<FnDef> fns;
  ProjectIndex decls;
};

}  // namespace

RunResult Run(const Options& options) {
  RunResult result;

  // Assemble the index set: every file whose declarations feed the
  // cross-TU state, and (by default) the lint targets themselves.
  std::vector<std::string> index_files;
  std::set<std::string> seen;
  auto add = [&](const std::string& p) {
    if (seen.insert(p).second) index_files.push_back(p);
  };
  if (!options.compdb.empty()) {
    for (const auto& f : ReadCompileCommands(options.compdb)) add(f);
  }
  if (!options.root.empty()) {
    // Headers are not TUs, so the compdb never lists them; glob the
    // trees that hold project headers.
    for (const char* sub : {"src", "tools", "tests", "bench", "examples"}) {
      const fs::path dir = fs::path(options.root) / sub;
      std::error_code ec;
      if (!fs::is_directory(dir, ec)) continue;
      for (const auto& f : GlobSources(dir.string())) add(f);
    }
  }
  for (const auto& f : options.index_extra) add(f);
  for (const auto& f : options.targets) add(f);

  std::vector<std::string> targets = options.targets;
  if (targets.empty()) targets = index_files;

  // Pass 1: lex and scan every file in parallel — each index owns a
  // private FileScan slot (including a private ProjectIndex for the
  // file's declarations) — then merge the slots into the real index in
  // file order, so the result is bit-identical for any job count.
  std::vector<FileScan> scans(index_files.size());
  ParallelFor(index_files.size(), options.jobs, [&](std::size_t i) {
    FileScan& slot = scans[i];
    std::string text;
    if (!ReadFile(index_files[i], text)) return;
    slot.ok = true;
    slot.file = Lex(index_files[i], text);
    slot.classes = ScanClasses(slot.file);
    IndexDeclarations(slot.file, slot.classes, slot.decls);
    slot.fns = ScanFunctions(slot.file, slot.classes, nullptr);
  });

  ProjectIndex index;
  std::unordered_map<std::string, std::size_t> slot_of;
  for (std::size_t i = 0; i < index_files.size(); ++i) {
    FileScan& slot = scans[i];
    if (!slot.ok) {
      result.errors.push_back("cannot read " + index_files[i]);
      continue;
    }
    slot_of.emplace(index_files[i], i);
    for (const auto& [name, val] : slot.decls.rank_values) {
      index.rank_values[name] = val;
    }
    for (auto& [key, ranks] : slot.decls.raw_mutex_decls) {
      auto& dst = index.raw_mutex_decls[key];
      dst.insert(dst.end(), ranks.begin(), ranks.end());
    }
    index.status_fns.insert(slot.decls.status_fns.begin(),
                            slot.decls.status_fns.end());
    index.nonstatus_fns.insert(slot.decls.nonstatus_fns.begin(),
                               slot.decls.nonstatus_fns.end());
    for (auto& def : slot.fns) {
      index.fns[def.name].push_back(std::move(def));
    }
    slot.fns.clear();
  }
  FinalizeIndex(index);

  // Pass 2: lint the targets with full cross-TU context, fanned the
  // same way — per-target finding slots, merged in target order.
  std::unordered_set<std::string> enabled(options.checks.begin(),
                                          options.checks.end());
  auto on = [&](const char* name) {
    return enabled.empty() || enabled.count(name) != 0;
  };
  const std::vector<std::string>& check_order = AllChecks();
  std::vector<std::vector<Finding>> target_findings(targets.size());
  std::vector<std::vector<Finding>> target_stale(targets.size());
  std::vector<std::vector<double>> target_nanos(
      targets.size(), std::vector<double>(check_order.size(), 0.0));
  ParallelFor(targets.size(), options.jobs, [&](std::size_t ti) {
    const auto it = slot_of.find(targets[ti]);
    if (it == slot_of.end()) return;  // read error already recorded
    const FileScan& slot = scans[it->second];
    const FileTokens& file = slot.file;
    const auto fns = ScanFunctions(file, slot.classes, &index);
    std::vector<Finding>& findings = target_findings[ti];
    std::size_t ci = 0;
    auto timed = [&](const char* name, auto&& run) {
      if (on(name)) {
        const auto t0 = std::chrono::steady_clock::now();
        run();
        const auto t1 = std::chrono::steady_clock::now();
        target_nanos[ti][ci] +=
            std::chrono::duration<double, std::nano>(t1 - t0).count();
      }
      ++ci;
    };
    timed(kNoRawSync, [&] { CheckNoRawSync(file, findings); });
    timed(kNoBlockingUnderLock,
          [&] { CheckNoBlockingUnderLock(file, fns, index, findings); });
    timed(kGuardedByCoverage,
          [&] { CheckGuardedByCoverage(file, slot.classes, findings); });
    timed(kStatusChecked,
          [&] { CheckStatusChecked(file, fns, index, findings); });
    timed(kLockRankStatic,
          [&] { CheckLockRankStatic(file, fns, index, findings); });
    timed(kHotPathPurity,
          [&] { CheckHotPathPurity(file, fns, index, findings); });
    timed(kNoPayloadCopy, [&] { CheckNoPayloadCopy(file, fns, findings); });
    timed(kViewEscape,
          [&] { CheckViewEscape(file, slot.classes, fns, index, findings); });
    timed(kUseAfterMove, [&] { CheckUseAfterMove(file, fns, findings); });
    timed(kCvWaitPredicate,
          [&] { CheckCvWaitPredicate(file, fns, findings); });
    // Dead-marker scan: needs every check's findings (suppressed ones
    // included) to prove a marker matches nothing — a subset run can't.
    if (enabled.empty()) {
      target_stale[ti] = FindStaleSuppressions(file, check_order, findings);
    }
    std::erase_if(findings, [](const Finding& f) { return f.suppressed; });
  });
  std::vector<Finding> findings;
  for (auto& per_target : target_findings) {
    for (auto& f : per_target) findings.push_back(std::move(f));
  }
  for (auto& per_target : target_stale) {
    for (auto& f : per_target) result.stale.push_back(std::move(f));
  }
  for (std::size_t ci = 0; ci < check_order.size(); ++ci) {
    double nanos = 0.0;
    for (const auto& per_target : target_nanos) nanos += per_target[ci];
    result.check_seconds.emplace_back(check_order[ci], nanos / 1e9);
  }

  // Sort BEFORE the baseline filter: the baseline matches occurrence
  // counts, so which instance of N identical fingerprints gets absorbed
  // must not depend on traversal order.
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.message < b.message;
            });
  std::map<std::string, std::size_t> base_count;
  if (!options.baseline.empty()) base_count = LoadBaseline(options.baseline);
  for (auto& f : findings) {
    const auto it = base_count.find(f.Fingerprint());
    if (it != base_count.end() && it->second > 0) {
      --it->second;
      ++result.baselined;
      continue;
    }
    result.findings.push_back(std::move(f));
  }
  const auto by_pos = [](const Finding& a, const Finding& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    return a.message < b.message;
  };
  std::sort(result.stale.begin(), result.stale.end(), by_pos);
  // Baseline staleness is only provable on a full run: every file
  // linted, every check enabled. (base_count is an ordered map, so the
  // report order is deterministic.)
  if (options.targets.empty() && enabled.empty() && !options.baseline.empty()) {
    for (const auto& [fp, left] : base_count) {
      if (left == 0) continue;
      result.stale_baseline.push_back(
          "baseline entry '" + fp + "' has " + std::to_string(left) +
          " unmatched occurrence(s); remove it or lower its count");
    }
  }
  return result;
}

}  // namespace prisma_lint
