#include "checks.hpp"

#include <algorithm>
#include <set>

namespace prisma_lint {
namespace {

using Kind = Token::Kind;

void Emit(std::vector<Finding>& out, const FileTokens& file, int line,
          const char* check, std::string message) {
  // Suppressed findings are kept (flagged) so the driver can prove each
  // allow(...) marker still matches something before dropping them.
  Finding f{file.path, line, check, std::move(message)};
  f.suppressed = IsSuppressed(file, line, check);
  out.push_back(std::move(f));
}

bool PathEndsWith(const std::string& path, const std::string& suffix) {
  return path.size() >= suffix.size() &&
         path.compare(path.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::string RankLabel(const ProjectIndex& index, int rank) {
  for (const auto& [name, v] : index.rank_values) {
    if (v == rank) return name;
  }
  return "rank " + std::to_string(rank);
}

std::string HeldLabel(const std::vector<HeldLock>& held) {
  std::string s;
  for (const auto& h : held) {
    if (!s.empty()) s += ", ";
    s += "'" + h.mutex_name + "'";
  }
  return s;
}

}  // namespace

const std::vector<std::string>& AllChecks() {
  static const std::vector<std::string> kAll = {
      kNoRawSync,      kNoBlockingUnderLock, kGuardedByCoverage,
      kStatusChecked,  kLockRankStatic,      kHotPathPurity,
      kNoPayloadCopy,  kViewEscape,          kUseAfterMove,
      kCvWaitPredicate};
  return kAll;
}

// ---------------------------------------------------------------------------
// (1) no-raw-sync

void CheckNoRawSync(const FileTokens& file, std::vector<Finding>& out) {
  // The one place allowed to touch the std primitives: the wrapper that
  // gives them ranks and TSA capabilities.
  if (PathEndsWith(file.path, "common/mutex.hpp") ||
      PathEndsWith(file.path, "common/mutex.cpp")) {
    return;
  }
  static const std::set<std::string> kRawStd = {
      "mutex",          "recursive_mutex",       "timed_mutex",
      "recursive_timed_mutex",                   "shared_mutex",
      "shared_timed_mutex",                      "condition_variable",
      "condition_variable_any",                  "lock_guard",
      "unique_lock",    "scoped_lock",           "shared_lock",
  };
  static const std::set<std::string> kRawPthread = {
      "pthread_mutex_t",    "pthread_mutex_init", "pthread_mutex_lock",
      "pthread_mutex_unlock", "pthread_cond_t",   "pthread_cond_init",
      "pthread_cond_wait",  "pthread_cond_signal",
  };
  const auto& t = file.tokens;
  for (std::size_t i = 0; i + 2 < t.size(); ++i) {
    if (t[i].kind != Kind::kIdent) continue;
    if (t[i].text == "std" && t[i + 1].text == "::" &&
        t[i + 2].kind == Kind::kIdent && kRawStd.count(t[i + 2].text) != 0) {
      Emit(out, file, t[i + 2].line, kNoRawSync,
           "raw std::" + t[i + 2].text +
               " is forbidden outside src/common/mutex.{hpp,cpp}; use the "
               "ranked prisma::Mutex / MutexLock / CondVar");
      i += 2;
      continue;
    }
    if (kRawPthread.count(t[i].text) != 0) {
      Emit(out, file, t[i].line, kNoRawSync,
           "raw " + t[i].text +
               " is forbidden; use the ranked prisma::Mutex / MutexLock / "
               "CondVar");
    }
  }
}

// ---------------------------------------------------------------------------
// (2) no-blocking-under-lock

void CheckNoBlockingUnderLock(const FileTokens& file,
                              const std::vector<FnDef>& fns,
                              const ProjectIndex& index,
                              std::vector<Finding>& out) {
  std::set<std::pair<int, std::string>> seen;  // (line, callee) dedup
  for (const auto& fn : fns) {
    for (const auto& b : fn.blocking) {
      if (b.held.empty()) continue;
      if (!seen.insert({b.line, b.name}).second) continue;
      Emit(out, file, b.line, kNoBlockingUnderLock,
           "blocking call '" + b.name + "' while holding " +
               HeldLabel(b.held) + "; hoist the I/O out of the critical "
               "section");
    }
    for (const auto& c : fn.calls) {
      if (c.held.empty()) continue;
      if (c.name == fn.name) continue;  // recursion: reported at the leaf
      if (!CrossTuResolvable(c.name)) continue;
      const auto it = index.blocking_chain.find(c.name);
      if (it == index.blocking_chain.end()) continue;
      if (!seen.insert({c.line, c.name}).second) continue;
      Emit(out, file, c.line, kNoBlockingUnderLock,
           "call to '" + c.name + "' may block (" + it->second +
               ") while holding " + HeldLabel(c.held));
    }
  }
}

// ---------------------------------------------------------------------------
// (3) guarded-by-coverage

namespace {

/// One member-candidate statement inside a class body: token range
/// [begin, end) at class-body depth, ending before its ';' (or before a
/// skipped function body).
struct MemberScan {
  bool owns_mutex = false;
  std::string mutex_member;  // first Mutex member's name, for messages
  struct Candidate {
    std::string name;
    int line = 0;
  };
  std::vector<Candidate> unguarded;
};

MemberScan ScanClassBody(const FileTokens& file, const ClassInfo& cls,
                         const std::vector<ClassInfo>& all) {
  MemberScan result;
  const auto& t = file.tokens;

  // Direct-child class body ranges: their members are handled by their
  // own ClassInfo entry.
  std::vector<std::pair<std::size_t, std::size_t>> nested;
  for (const auto& other : all) {
    if (other.body_begin > cls.body_begin && other.body_end < cls.body_end) {
      nested.push_back({other.body_begin - 1, other.body_end});  // incl. '{'
    }
  }

  std::size_t i = cls.body_begin;
  while (i < cls.body_end) {
    // Skip nested class bodies.
    bool skipped = false;
    for (const auto& [b, e] : nested) {
      if (i == b) {
        i = e + 1;
        skipped = true;
        break;
      }
    }
    if (skipped) continue;

    // Collect one statement.
    std::vector<std::size_t> stmt;  // token indices at paren-depth 0
    int paren = 0;
    bool ended_by_body = false;
    std::size_t j = i;
    for (; j < cls.body_end; ++j) {
      const Token& tok = t[j];
      if (tok.text == "(" || tok.text == "[") {
        ++paren;
        stmt.push_back(j);
        continue;
      }
      if (tok.text == ")" || tok.text == "]") {
        --paren;
        stmt.push_back(j);
        continue;
      }
      if (tok.text == "{" && paren == 0) {
        // Function body or brace initializer: record the opener (member
        // detection wants `name_{` patterns) and skip the group.
        stmt.push_back(j);
        j = MatchForward(t, j);
        // `};` (initializer) continues the statement; a function body
        // ends it.
        if (j + 1 < cls.body_end && t[j + 1].text == ";") {
          ++j;
          break;
        }
        ended_by_body = true;
        break;
      }
      if (tok.text == ";" && paren == 0) break;
      if (tok.text == ":" && paren == 0 && !stmt.empty() &&
          t[stmt.back()].kind == Kind::kIdent && stmt.size() == 1) {
        // Access specifier (`public:` etc.).
        stmt.clear();
        break;
      }
      if (paren == 0) stmt.push_back(j);
    }
    i = j + 1;
    if (stmt.empty()) continue;
    (void)ended_by_body;

    // Classify the statement.
    const std::string& first = t[stmt[0]].text;
    if (first == "using" || first == "typedef" || first == "friend" ||
        first == "static" || first == "constexpr" || first == "template" ||
        first == "enum" || first == "class" || first == "struct" ||
        first == "public" || first == "private" || first == "protected") {
      continue;
    }
    bool guarded = false, is_mutex = false, exempt = false, indirect = false;
    for (std::size_t s = 0; s < stmt.size(); ++s) {
      const std::string& w = t[stmt[s]].text;
      if (w == "GUARDED_BY" || w == "PT_GUARDED_BY") guarded = true;
      if (w == "Mutex" || w == "CondVar" || w == "MutexLock") is_mutex = true;
      if (w == "atomic" || w == "const" || w == "atomic_flag") exempt = true;
      if (w == "*" || w == "&") indirect = true;
    }
    // `Mutex* mu;` is a reference to someone else's lock, not ownership
    // — it neither makes this class lock-owning nor needs a guard.
    if (is_mutex && indirect) {
      is_mutex = false;
      exempt = true;
    }
    // Member-candidate: a non-keyword identifier at depth 0 directly
    // followed by ';' '=' '{' or '['.
    std::string member_name;
    int member_line = 0;
    for (std::size_t s = 0; s + 1 <= stmt.size(); ++s) {
      const Token& tok = t[stmt[s]];
      if (tok.kind != Kind::kIdent || IsKeyword(tok.text)) continue;
      const std::size_t next_idx = stmt[s] + 1;  // raw successor token
      const std::string& nx = t[next_idx].text;
      if (nx == ";" || nx == "=" || nx == "{" || nx == "[") {
        member_name = tok.text;
        member_line = tok.line;
        break;
      }
    }
    if (member_name.empty()) continue;
    if (is_mutex) {
      if (!result.owns_mutex) {
        result.owns_mutex = true;
        result.mutex_member = member_name;
      }
      continue;
    }
    if (guarded || exempt) continue;
    result.unguarded.push_back({member_name, member_line});
  }
  return result;
}

}  // namespace

void CheckGuardedByCoverage(const FileTokens& file,
                            const std::vector<ClassInfo>& classes,
                            std::vector<Finding>& out) {
  for (const auto& cls : classes) {
    const MemberScan scan = ScanClassBody(file, cls, classes);
    if (!scan.owns_mutex) continue;
    for (const auto& m : scan.unguarded) {
      Emit(out, file, m.line, kGuardedByCoverage,
           "member '" + m.name + "' of '" + cls.name + "' (which owns '" +
               scan.mutex_member +
               "') lacks GUARDED_BY/PT_GUARDED_BY; annotate it or add "
               "// prisma-lint: unguarded(<reason>)");
    }
  }
}

// ---------------------------------------------------------------------------
// (4) status-checked

void CheckStatusChecked(const FileTokens& file, const std::vector<FnDef>& fns,
                        const ProjectIndex& index, std::vector<Finding>& out) {
  const auto& t = file.tokens;

  // Bare (void) casts on Status/Result-returning calls.
  for (std::size_t i = 0; i + 3 < t.size(); ++i) {
    if (t[i].text != "(" || t[i + 1].text != "void" || t[i + 2].text != ")") {
      continue;
    }
    // `f(void)` parameter lists and similar: the token before '(' must
    // not be an identifier, and something must follow the cast.
    if (i > 0 && t[i - 1].kind == Kind::kIdent) continue;
    // First call in the casted expression, up to the statement end.
    std::string callee;
    int depth = 0;
    for (std::size_t j = i + 3; j + 1 < t.size(); ++j) {
      if (t[j].text == ";" && depth == 0) break;
      if (t[j].text == "(" || t[j].text == "[") ++depth;
      if (t[j].text == ")" || t[j].text == "]") --depth;
      if (t[j].kind == Kind::kIdent && t[j + 1].text == "(" &&
          !IsKeyword(t[j].text)) {
        callee = t[j].text;
        break;
      }
    }
    if (callee.empty() || index.status_fns.count(callee) == 0) continue;
    Emit(out, file, t[i].line, kStatusChecked,
         "bare (void) cast drops the Status/Result of '" + callee +
             "'; use PRISMA_IGNORE_STATUS(expr, reason) or propagate it");
  }

  // Expression statements that silently drop a Status/Result value.
  // (The [[nodiscard]] on Status/Result catches most of these at
  // compile time; this closes the gap for toolchains/warning levels
  // where the diagnostic is off, and for future un-annotated types.)
  // Only statements inside function bodies count: at class/namespace
  // scope, `Status Read(...);` is a declaration, not a dropped call.
  auto in_body = [&fns](std::size_t i) {
    for (const auto& fn : fns) {
      if (fn.body_begin <= i && i < fn.body_end) return true;
    }
    return false;
  };
  for (std::size_t i = 1; i + 1 < t.size(); ++i) {
    if (!in_body(i)) continue;
    const std::string& prev = t[i - 1].text;
    if (prev != ";" && prev != "{" && prev != "}") continue;
    if (t[i].kind != Kind::kIdent || IsKeyword(t[i].text)) continue;
    if (t[i].text == "PRISMA_IGNORE_STATUS") continue;
    // Walk the statement; bail on anything that consumes the value.
    std::size_t j = i;
    int depth = 0;
    bool plain = true;
    std::string last_call;
    std::size_t last_call_close = 0;
    for (; j + 1 < t.size(); ++j) {
      const Token& tok = t[j];
      if (tok.text == ";" && depth == 0) break;
      if (tok.text == "{" && depth == 0) {
        plain = false;  // function definition or compound statement
        break;
      }
      if (tok.text == "(" || tok.text == "[") {
        if (tok.text == "(" && t[j - 1].kind == Kind::kIdent &&
            !IsKeyword(t[j - 1].text) && depth == 0) {
          last_call = t[j - 1].text;
          last_call_close = MatchForward(t, j);
        }
        ++depth;
        continue;
      }
      if (tok.text == ")" || tok.text == "]") {
        --depth;
        continue;
      }
      if (depth > 0) continue;
      if (tok.text == "=" || tok.text == "?" || tok.text == "+=" ||
          tok.text == "-=" || tok.text == "|=" || tok.text == "&=" ||
          tok.text == "<<" || tok.text == ">>") {
        plain = false;
      }
      if (tok.kind == Kind::kIdent && j > i && t[j - 1].kind == Kind::kIdent) {
        plain = false;  // `Status s ...` — a declaration
      }
    }
    if (!plain || last_call.empty()) continue;
    // The statement must END with the call: `Foo(args);`, `a->Foo(x);`.
    if (last_call_close + 1 != j) continue;
    if (index.status_fns.count(last_call) == 0) continue;
    Emit(out, file, t[i].line, kStatusChecked,
         "result of '" + last_call +
             "' (returns Status/Result) is silently dropped; check it, "
             "propagate it, or use PRISMA_IGNORE_STATUS(expr, reason)");
    i = j;
  }
}

// ---------------------------------------------------------------------------
// (5) lock-rank-static

void CheckLockRankStatic(const FileTokens& file, const std::vector<FnDef>& fns,
                         const ProjectIndex& index, std::vector<Finding>& out) {
  std::set<std::pair<int, std::string>> seen;
  for (const auto& fn : fns) {
    for (const auto& a : fn.acquires) {
      const int r2 = index.RankOf(a.lookup_key, a.mutex_name);
      if (r2 < 0) continue;
      for (const auto& h : a.held_before) {
        if (h.rank < 0 || r2 <= h.rank) continue;
        if (!seen.insert({a.line, a.mutex_name}).second) continue;
        Emit(out, file, a.line, kLockRankStatic,
             "acquiring '" + a.mutex_name + "' (" + RankLabel(index, r2) +
                 ") while holding '" + h.mutex_name + "' (" +
                 RankLabel(index, h.rank) +
                 ") inverts the global lock order");
      }
    }
    for (const auto& c : fn.calls) {
      if (c.held.empty() || c.name == fn.name) continue;
      if (!CrossTuResolvable(c.name)) continue;
      const auto it = index.effective_ranks.find(c.name);
      if (it == index.effective_ranks.end()) continue;
      for (const auto& h : c.held) {
        if (h.rank < 0) continue;
        // Highest rank the callee may acquire.
        const auto& eff = it->second;
        const auto top = eff.rbegin();
        if (top == eff.rend() || top->first <= h.rank) continue;
        if (!seen.insert({c.line, c.name}).second) continue;
        Emit(out, file, c.line, kLockRankStatic,
             "call to '" + c.name + "' may acquire " +
                 RankLabel(index, top->first) + " (" + top->second +
                 ") while holding '" + h.mutex_name + "' (" +
                 RankLabel(index, h.rank) + "): potential rank inversion");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// (6) hot-path-purity

void CheckHotPathPurity(const FileTokens& file, const std::vector<FnDef>& fns,
                        const ProjectIndex& index, std::vector<Finding>& out) {
  std::set<std::pair<int, std::string>> seen;  // (line, site) dedup
  for (const auto& fn : fns) {
    if (!fn.hot_path) continue;
    const std::string label =
        fn.class_name.empty() ? fn.name : fn.class_name + "::" + fn.name;
    for (const auto& a : fn.allocs) {
      if (!seen.insert({a.line, a.name}).second) continue;
      Emit(out, file, a.line, kHotPathPurity,
           "'" + label + "' is PRISMA_HOT_PATH but allocates: " + fn.name +
               " -> " + a.name +
               "; hoist it off the hot path or add a reasoned "
               "allow(hot-path-purity, ...)");
    }
    for (const auto& b : fn.blocking) {
      if (!seen.insert({b.line, b.name}).second) continue;
      Emit(out, file, b.line, kHotPathPurity,
           "'" + label + "' is PRISMA_HOT_PATH but blocks: " + fn.name +
               " -> " + b.name +
               "; hoist it off the hot path or add a reasoned "
               "allow(hot-path-purity, ...)");
    }
    for (const auto& c : fn.calls) {
      if (c.name == fn.name) continue;  // recursion: reported at the leaf
      if (!CrossTuResolvable(c.name)) continue;
      // Calls into other PRISMA_HOT_PATH functions are trusted: the
      // callee is audited (and suppressed where deliberate) at its own
      // definition.
      if (index.hot_fns.count(c.name) != 0) continue;
      const auto alloc = index.alloc_chain.find(c.name);
      if (alloc != index.alloc_chain.end()) {
        if (seen.insert({c.line, c.name}).second) {
          Emit(out, file, c.line, kHotPathPurity,
               "'" + label + "' is PRISMA_HOT_PATH but may allocate: " +
                   fn.name + " -> " + alloc->second +
                   "; hoist the allocation or add a reasoned "
                   "allow(hot-path-purity, ...)");
        }
        continue;  // one witness per call site is enough
      }
      const auto block = index.blocking_chain.find(c.name);
      if (block == index.blocking_chain.end()) continue;
      if (!seen.insert({c.line, c.name}).second) continue;
      Emit(out, file, c.line, kHotPathPurity,
           "'" + label + "' is PRISMA_HOT_PATH but may block: " + fn.name +
               " -> " + block->second +
               "; hoist the I/O or add a reasoned "
               "allow(hot-path-purity, ...)");
    }
  }
}

// ---------------------------------------------------------------------------
// (7) no-payload-copy

void CheckNoPayloadCopy(const FileTokens& file, const std::vector<FnDef>& fns,
                        std::vector<Finding>& out) {
  std::set<std::pair<int, std::string>> seen;  // (line, what) dedup
  for (const auto& copy : FindPayloadCopies(file, fns)) {
    if (!seen.insert({copy.line, copy.what}).second) continue;
    Emit(out, file, copy.line, kNoPayloadCopy,
         copy.what + " copies heavy payload type '" + copy.type +
             "'; pass by reference, move, or add a reasoned "
             "allow(no-payload-copy, ...)");
  }
}

// ---------------------------------------------------------------------------
// (8) view-escape

void CheckViewEscape(const FileTokens& file,
                     const std::vector<ClassInfo>& classes,
                     const std::vector<FnDef>& fns, const ProjectIndex& index,
                     std::vector<Finding>& out) {
  std::set<std::pair<int, std::string>> seen;  // (line, what) dedup
  for (const auto& esc : FindViewEscapes(file, classes, fns, index)) {
    if (!seen.insert({esc.line, esc.what}).second) continue;
    Emit(out, file, esc.line, kViewEscape, esc.what);
  }
}

// ---------------------------------------------------------------------------
// (9) use-after-move

void CheckUseAfterMove(const FileTokens& file, const std::vector<FnDef>& fns,
                       std::vector<Finding>& out) {
  std::set<std::pair<int, std::string>> seen;  // (line, what) dedup
  for (const auto& use : FindUseAfterMove(file, fns)) {
    if (!seen.insert({use.line, use.what}).second) continue;
    Emit(out, file, use.line, kUseAfterMove, use.what);
  }
}

// ---------------------------------------------------------------------------
// (10) cv-wait-predicate

namespace {

/// Token ranges of loop statements in [begin, end): `while (...)` /
/// `for (...)` bodies (braced or single-statement) and braced
/// `do { ... } while`. A Wait inside one is re-checked by construction.
std::vector<std::pair<std::size_t, std::size_t>> LoopRegions(
    const std::vector<Token>& t, std::size_t begin, std::size_t end) {
  std::vector<std::pair<std::size_t, std::size_t>> out;
  for (std::size_t k = begin; k < end; ++k) {
    if (t[k].kind != Kind::kIdent) continue;
    const std::string& s = t[k].text;
    if (s == "do") {
      if (k + 1 < end && t[k + 1].text == "{") {
        out.push_back({k, MatchForward(t, k + 1)});
      }
      continue;
    }
    if (s != "while" && s != "for") continue;
    if (k + 1 >= end || t[k + 1].text != "(") continue;
    const std::size_t cond_close = MatchForward(t, k + 1);
    const std::size_t b = cond_close + 1;
    if (b >= end) continue;
    if (t[b].text == "{") {
      out.push_back({k, MatchForward(t, b)});
      continue;
    }
    // Braceless body: one statement, to the `;` at nesting depth zero.
    int depth = 0;
    std::size_t e = b;
    for (; e < end; ++e) {
      const std::string& w = t[e].text;
      if (w == "(" || w == "[" || w == "{") {
        ++depth;
      } else if (w == ")" || w == "]" || w == "}") {
        --depth;
      } else if (w == ";" && depth == 0) {
        break;
      }
    }
    out.push_back({k, e});
  }
  return out;
}

}  // namespace

void CheckCvWaitPredicate(const FileTokens& file,
                          const std::vector<FnDef>& fns,
                          std::vector<Finding>& out) {
  static const std::set<std::string> kWaits = {"Wait", "WaitUntil", "WaitFor"};
  const auto& t = file.tokens;
  std::set<std::pair<int, std::string>> seen;  // (line, method) dedup
  for (const auto& fn : fns) {
    const auto regions = LoopRegions(t, fn.body_begin, fn.body_end);
    for (std::size_t k = fn.body_begin; k + 1 < fn.body_end; ++k) {
      if (t[k].kind != Kind::kIdent || kWaits.count(t[k].text) == 0) continue;
      if (k == 0 || (t[k - 1].text != "." && t[k - 1].text != "->")) continue;
      if (t[k + 1].text != "(") continue;
      bool looped = false;
      for (const auto& [rb, re] : regions) {
        if (rb <= k && k <= re) {
          looped = true;
          break;
        }
      }
      if (looped) continue;
      if (!seen.insert({t[k].line, t[k].text}).second) continue;
      Emit(out, file, t[k].line, kCvWaitPredicate,
           "'" + t[k].text +
               "' outside a condition re-checking loop can lose spurious or "
               "missed wakeups; wrap it as `while (!ready) cv." + t[k].text +
               "(mu);` or add a reasoned allow(cv-wait-predicate, ...)");
    }
  }
}

}  // namespace prisma_lint
