// prisma-lint CLI. See DESIGN.md §11 for the check catalog.
//
//   prisma_lint --root . [--compdb build/compile_commands.json]
//               [--baseline scripts/prisma-lint-baseline.txt]
//               [--checks a,b] [files...]
//
// With no files, lints every source the compdb + header glob yields;
// with files, lints just those (the cross-TU index is still built from
// the whole project so interprocedural checks stay accurate).
// Exit status: 0 clean (or fully baselined), 1 findings, 2 usage error.
#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <filesystem>
#include <string>
#include <vector>

#include "checks.hpp"
#include "driver.hpp"

namespace {

int Usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " [options] [files...]\n"
      << "  --root DIR       repo root (default: .)\n"
      << "  --compdb FILE    compile_commands.json (default: <root>/compile_commands.json if present)\n"
      << "  --baseline FILE  baseline (default: <root>/scripts/prisma-lint-baseline.txt if present)\n"
      << "  --no-baseline    ignore the baseline file\n"
      << "  --checks A,B     run only the named checks\n"
      << "  --list-checks    print check names and exit\n"
      << "  --jobs N         worker threads for lex/scan and lint (default: 1)\n"
      << "  --timings        print per-check lint time to stderr\n"
      << "  --timings-json F also write the per-check timings as JSON to F\n"
      << "  --format=github  emit GitHub Actions ::error annotations\n"
      << "  --quiet          suppress the summary line\n";
  return 2;
}

/// Per-check timings in the google-benchmark JSON shape the repo's
/// other bench results use, so CI can diff lint engine cost like any
/// other benchmark.
void WriteTimingsJson(const std::string& path,
                      const prisma_lint::RunResult& result) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "prisma-lint: cannot write " << path << "\n";
    return;
  }
  out << "{\n  \"context\": {\n"
      << "    \"executable\": \"prisma_lint\",\n"
      << "    \"num_checks\": " << result.check_seconds.size() << "\n"
      << "  },\n  \"benchmarks\": [\n";
  for (std::size_t i = 0; i < result.check_seconds.size(); ++i) {
    const auto& [check, seconds] = result.check_seconds[i];
    out << "    {\n"
        << "      \"name\": \"lint/" << check << "\",\n"
        << "      \"run_type\": \"aggregate\",\n"
        << "      \"cpu_time\": " << static_cast<long long>(seconds * 1e6)
        << ",\n"
        << "      \"time_unit\": \"us\"\n"
        << "    }" << (i + 1 < result.check_seconds.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  prisma_lint::Options opt;
  opt.root = ".";
  bool no_baseline = false;
  bool quiet = false;
  bool timings = false;
  bool github = false;
  std::string timings_json;
  bool compdb_set = false, baseline_set = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << flag << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--root") {
      opt.root = value("--root");
    } else if (arg == "--compdb") {
      opt.compdb = value("--compdb");
      compdb_set = true;
    } else if (arg == "--baseline") {
      opt.baseline = value("--baseline");
      baseline_set = true;
    } else if (arg == "--no-baseline") {
      no_baseline = true;
    } else if (arg == "--checks") {
      std::string list = value("--checks");
      std::size_t start = 0;
      while (start <= list.size()) {
        const std::size_t comma = list.find(',', start);
        const std::string name = list.substr(
            start, comma == std::string::npos ? std::string::npos
                                              : comma - start);
        if (!name.empty()) opt.checks.push_back(name);
        if (comma == std::string::npos) break;
        start = comma + 1;
      }
    } else if (arg == "--list-checks") {
      for (const auto& c : prisma_lint::AllChecks()) std::cout << c << "\n";
      return 0;
    } else if (arg == "--jobs") {
      opt.jobs = std::atoi(value("--jobs"));
      if (opt.jobs < 1) opt.jobs = 1;
    } else if (arg == "--timings") {
      timings = true;
    } else if (arg == "--timings-json") {
      timings_json = value("--timings-json");
    } else if (arg == "--format=github") {
      github = true;
    } else if (arg.rfind("--format=", 0) == 0) {
      std::cerr << "unknown format '" << arg.substr(9)
                << "' (supported: github)\n";
      return 2;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      Usage(argv[0]);
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "unknown option " << arg << "\n";
      return Usage(argv[0]);
    } else {
      opt.targets.push_back(arg);
    }
  }

  for (const auto& c : opt.checks) {
    const auto& all = prisma_lint::AllChecks();
    if (std::find(all.begin(), all.end(), c) == all.end()) {
      std::cerr << "unknown check '" << c << "' (see --list-checks)\n";
      return 2;
    }
  }

  namespace fs = std::filesystem;
  std::error_code ec;
  if (!compdb_set) {
    const fs::path p = fs::path(opt.root) / "compile_commands.json";
    if (fs::exists(p, ec)) opt.compdb = p.string();
  }
  if (!baseline_set) {
    const fs::path p =
        fs::path(opt.root) / "scripts" / "prisma-lint-baseline.txt";
    if (fs::exists(p, ec)) opt.baseline = p.string();
  }
  if (no_baseline) opt.baseline.clear();

  const prisma_lint::RunResult result = prisma_lint::Run(opt);
  for (const auto& e : result.errors) std::cerr << "prisma-lint: " << e << "\n";
  auto print = [&](const prisma_lint::Finding& f) {
    std::cout << (github ? f.ToGitHubAnnotation() : f.ToString()) << "\n";
  };
  for (const auto& f : result.findings) print(f);
  for (const auto& f : result.stale) print(f);
  for (const auto& s : result.stale_baseline) {
    if (github) {
      prisma_lint::Finding f{opt.baseline, 1, "stale-suppression", s};
      std::cout << f.ToGitHubAnnotation() << "\n";
    } else {
      std::cout << opt.baseline << ": [stale-suppression] " << s << "\n";
    }
  }
  if (timings) {
    // CPU time summed across workers, not wall clock — the number CI
    // graphs to spot a check whose cost regressed.
    for (const auto& [check, seconds] : result.check_seconds) {
      std::cerr << "prisma-lint: timing " << check << " "
                << static_cast<long long>(seconds * 1e6) << "us\n";
    }
  }
  if (!timings_json.empty()) WriteTimingsJson(timings_json, result);
  if (!quiet) {
    std::cerr << "prisma-lint: " << result.findings.size() << " finding(s)";
    const std::size_t stale =
        result.stale.size() + result.stale_baseline.size();
    if (stale > 0) std::cerr << ", " << stale << " stale suppression(s)";
    if (result.baselined > 0) {
      std::cerr << ", " << result.baselined << " baselined";
    }
    std::cerr << "\n";
  }
  const bool clean = result.findings.empty() && result.stale.empty() &&
                     result.stale_baseline.empty();
  return clean ? 0 : 1;
}
