#!/usr/bin/env bash
# Tier-1 verification: configure, build, and run the full ctest suite.
#
# Environment:
#   PRISMA_SANITIZE   empty (default) or one of address|thread|undefined;
#                     forwarded to the PRISMA_SANITIZE cmake cache option.
#   BUILD_DIR         build tree location (default: build-ci, or
#                     build-ci-$PRISMA_SANITIZE for sanitizer runs).
#   JOBS              parallelism (default: nproc).
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"
if [[ -n "${PRISMA_SANITIZE:-}" ]]; then
  BUILD_DIR="${BUILD_DIR:-build-ci-${PRISMA_SANITIZE}}"
  cmake -B "${BUILD_DIR}" -S . -DPRISMA_SANITIZE="${PRISMA_SANITIZE}"
else
  BUILD_DIR="${BUILD_DIR:-build-ci}"
  cmake -B "${BUILD_DIR}" -S .
fi

cmake --build "${BUILD_DIR}" -j "${JOBS}"
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "${JOBS}"
