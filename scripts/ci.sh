#!/usr/bin/env bash
# Tier-1 verification and the static-analysis matrix, one mode per run.
#
# Usage: scripts/ci.sh [MODE] [MODE_ARG]
#
# Modes:
#   default    configure + build + full ctest suite (tier-1)
#   asan       tier-1 under AddressSanitizer
#   tsan       tier-1 under ThreadSanitizer
#   ubsan      tier-1 under UndefinedBehaviorSanitizer
#   lockcheck  tier-1 as a Debug build with the runtime lock-order
#              validator (PRISMA_LOCK_ORDER_CHECKS) enabled; this is the
#              build where the LockOrderDeathTest cases actually run
#   uring      tier-1 against both async data-plane configs: one build
#              with -DPRISMA_IO_URING=ON (runtime-probes the kernel; the
#              io_uring cases skip gracefully where unsupported) and one
#              with =OFF (uring compiled out, epoll engine forced)
#   tsa        clang -Wthread-safety -Werror compile of the tree (no
#              tests); skipped with a notice when clang is unavailable
#   tidy       clang-tidy over files changed since the merge base,
#              filtered through scripts/clang-tidy-baseline.txt; skipped
#              with a notice when clang-tidy is unavailable
#   lint       prisma-lint (tools/prisma_lint) over the whole tree,
#              filtered through scripts/prisma-lint-baseline.txt.
#              `lint changed` lints only files changed since the merge
#              base (the cross-TU index still covers the whole tree, so
#              interprocedural checks stay accurate) — the fast path for
#              PR builds; pushes to main run the full form.
#
# Environment:
#   PRISMA_SANITIZE  legacy interface: address|thread|undefined maps to
#                    the matching mode when no MODE argument is given.
#   BUILD_DIR        build tree override (default: build-ci-$MODE, or
#                    build-ci for the default mode) — per-mode trees so
#                    CI caching never mixes sanitizer runtimes.
#   JOBS             parallelism (default: nproc).
#   TIDY_BASE        merge base for the tidy mode (default: origin/main,
#                    falling back to HEAD~1).
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"
MODE="${1:-}"
if [[ -z "${MODE}" ]]; then
  case "${PRISMA_SANITIZE:-}" in
    address) MODE=asan ;;
    thread) MODE=tsan ;;
    undefined) MODE=ubsan ;;
    "") MODE=default ;;
    *) echo "unknown PRISMA_SANITIZE='${PRISMA_SANITIZE}'" >&2; exit 2 ;;
  esac
fi

configure_build_test() {
  local build_dir="$1"; shift
  cmake -B "${build_dir}" -S . "$@"
  cmake --build "${build_dir}" -j "${JOBS}"
  ctest --test-dir "${build_dir}" --output-on-failure -j "${JOBS}"
}

find_clang() {
  local tool
  for tool in "$@"; do
    if command -v "${tool}" > /dev/null 2>&1; then
      echo "${tool}"
      return 0
    fi
  done
  return 1
}

case "${MODE}" in
  default)
    configure_build_test "${BUILD_DIR:-build-ci}"
    # Smoke-run the stacked-pipeline example: a config-declared
    # prefetch|tiering chain end-to-end through the UDS server.
    "${BUILD_DIR:-build-ci}/examples/stacked_pipeline" \
      configs/stacked_pipeline.cfg
    # Crash-consistency chaos: SIGKILL a durable tiering child
    # mid-promotion, then recover. Short deterministic iteration count —
    # the full ctest pass above already ran it once at the default count.
    PRISMA_CHAOS_ITERS=2 "${BUILD_DIR:-build-ci}/tests/tiering_chaos_test"
    ;;
  asan)
    configure_build_test "${BUILD_DIR:-build-ci-asan}" -DPRISMA_SANITIZE=address
    PRISMA_CHAOS_ITERS=2 "${BUILD_DIR:-build-ci-asan}/tests/tiering_chaos_test"
    ;;
  tsan)
    configure_build_test "${BUILD_DIR:-build-ci-tsan}" -DPRISMA_SANITIZE=thread
    ;;
  ubsan)
    # halt_on_error: a UB report must fail the test, not scroll past.
    export UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1:print_stacktrace=1}"
    configure_build_test "${BUILD_DIR:-build-ci-ubsan}" \
      -DPRISMA_SANITIZE=undefined
    ;;
  lockcheck)
    configure_build_test "${BUILD_DIR:-build-ci-lockcheck}" \
      -DCMAKE_BUILD_TYPE=Debug -DPRISMA_LOCK_CHECKS=ON
    ;;
  uring)
    # Both engine configs must pass the same suite: the ON build selects
    # io_uring when the kernel supports it (and skips the uring-only
    # cases when it does not); the OFF build compiles the uring engine
    # out, so every engine consumer runs on the epoll fallback.
    configure_build_test "${BUILD_DIR:-build-ci-uring}" -DPRISMA_IO_URING=ON
    configure_build_test "${BUILD_DIR:-build-ci-uring}-off" \
      -DPRISMA_IO_URING=OFF
    ;;
  tsa)
    # Compile-only pass with Clang Thread Safety Analysis promoted to an
    # error. The annotations are no-ops under GCC, so this is the one
    # mode that actually checks them; environments without clang (like
    # the gcc-only dev container) skip rather than fail.
    if ! CLANGXX="$(find_clang clang++ clang++-18 clang++-17 clang++-16 \
        clang++-15 clang++-14)"; then
      echo "ci.sh tsa: clang++ not found; skipping thread-safety build"
      exit 0
    fi
    BUILD_DIR="${BUILD_DIR:-build-ci-tsa}"
    cmake -B "${BUILD_DIR}" -S . \
      -DCMAKE_CXX_COMPILER="${CLANGXX}" \
      -DPRISMA_THREAD_SAFETY=ON -DPRISMA_WERROR=ON
    cmake --build "${BUILD_DIR}" -j "${JOBS}"
    echo "ci.sh tsa: clean under -Wthread-safety -Werror"
    ;;
  tidy)
    if ! TIDY="$(find_clang clang-tidy clang-tidy-18 clang-tidy-17 \
        clang-tidy-16 clang-tidy-15 clang-tidy-14)"; then
      echo "ci.sh tidy: clang-tidy not found; skipping lint"
      exit 0
    fi
    BUILD_DIR="${BUILD_DIR:-build-ci-tidy}"
    cmake -B "${BUILD_DIR}" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
    # Lint only the files this change touches: full-tree lint on a
    # codebase with pre-existing noise buries new findings. The baseline
    # file absorbs known noise lines so only fresh diagnostics fail.
    base="${TIDY_BASE:-origin/main}"
    if ! git rev-parse --verify --quiet "${base}" > /dev/null; then
      base="HEAD~1"
    fi
    mapfile -t changed < <(git diff --name-only --diff-filter=d \
      "$(git merge-base "${base}" HEAD)" -- 'src/*.cpp' 'tests/*.cpp' \
      'bench/*.cpp' 'tools/*.cpp' 'examples/*.cpp')
    if [[ "${#changed[@]}" -eq 0 ]]; then
      echo "ci.sh tidy: no changed C++ sources; nothing to lint"
      exit 0
    fi
    baseline="scripts/clang-tidy-baseline.txt"
    out="$(mktemp)"
    "${TIDY}" -p "${BUILD_DIR}" --quiet "${changed[@]}" > "${out}" || true
    # Normalize to "file:line-less" fingerprints so moved lines do not
    # churn the baseline, then drop everything the baseline already has.
    fresh="$(grep -E "(warning|error):" "${out}" \
      | sed -E 's|^[^:]*/||; s|:[0-9]+:[0-9]+:|:|' \
      | sort -u \
      | grep -Fxv -f <(grep -vE '^(#|$)' "${baseline}") || true)"
    if [[ -n "${fresh}" ]]; then
      echo "ci.sh tidy: new clang-tidy findings (not in ${baseline}):"
      echo "${fresh}"
      exit 1
    fi
    echo "ci.sh tidy: clean (${#changed[@]} files, baseline-filtered)"
    ;;
  lint)
    # prisma-lint builds with the host toolchain alone (no libclang), so
    # unlike tsa/tidy this mode never skips.
    BUILD_DIR="${BUILD_DIR:-build-ci-lint}"
    cmake -B "${BUILD_DIR}" -S . > /dev/null
    cmake --build "${BUILD_DIR}" -j "${JOBS}" --target prisma_lint
    lint_bin="${BUILD_DIR}/tools/prisma_lint/prisma_lint"
    # --jobs parallelizes the per-file lex/scan and per-target check
    # passes; --timings prints per-check CPU time so a check that turns
    # quadratic shows up in the CI log instead of as a silent slowdown.
    lint_args=(--root . --compdb "${BUILD_DIR}/compile_commands.json"
               --baseline scripts/prisma-lint-baseline.txt
               --jobs "${JOBS}" --timings)
    # On GitHub-hosted runs, findings double as ::error annotations so
    # they land inline on the PR diff instead of only in the job log.
    if [[ -n "${GITHUB_ACTIONS:-}" ]]; then
      lint_args+=(--format=github)
    fi
    # LINT_TIMINGS_JSON=<path> archives per-check CPU time in the same
    # google-benchmark JSON shape as bench/results/, for trend diffing
    # (the checked-in snapshot is bench/results/BENCH_lint_timings.json).
    if [[ -n "${LINT_TIMINGS_JSON:-}" ]]; then
      lint_args+=(--timings-json "${LINT_TIMINGS_JSON}")
    fi
    if [[ "${2:-full}" == "changed" ]]; then
      base="${TIDY_BASE:-origin/main}"
      if ! git rev-parse --verify --quiet "${base}" > /dev/null; then
        base="HEAD~1"
      fi
      mapfile -t changed < <(git diff --name-only --diff-filter=d \
        "$(git merge-base "${base}" HEAD)" -- 'src/*' 'tests/*' 'bench/*' \
        'tools/*' 'examples/*' \
        | grep -E '\.(cpp|cc|cxx|hpp|h)$' \
        | grep -vE '(^|/)lint_fixtures/' || true)
      if [[ "${#changed[@]}" -eq 0 ]]; then
        echo "ci.sh lint: no changed C++ sources; nothing to lint"
        exit 0
      fi
      "${lint_bin}" "${lint_args[@]}" "${changed[@]}"
      echo "ci.sh lint: clean (${#changed[@]} changed files)"
    else
      "${lint_bin}" "${lint_args[@]}"
      echo "ci.sh lint: clean (full tree)"
    fi
    ;;
  *)
    echo "unknown mode '${MODE}'" >&2
    exit 2
    ;;
esac
