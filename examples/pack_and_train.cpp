// Data-format optimization demo: pack a small-file dataset into record
// shards (storage/record_format.hpp), then train through PRISMA with the
// ShardedBackend serving the ORIGINAL file namespace — the framework-side
// consumer code is identical before and after packing, and both
// optimizations (sharding below, prefetching above) compose without it
// noticing.
#include <chrono>
#include <cstdio>

#include "dataplane/prefetch_object.hpp"
#include "storage/record_format.hpp"
#include "storage/shuffler.hpp"
#include "storage/synthetic_backend.hpp"

using namespace prisma;

namespace {

double ConsumeEpoch(storage::StorageBackend& backend,
                    const std::vector<std::string>& order) {
  const auto t0 = std::chrono::steady_clock::now();
  for (const auto& name : order) {
    const auto size = backend.FileSize(name);
    std::vector<std::byte> buf(static_cast<std::size_t>(size.value_or(0)));
    PRISMA_IGNORE_STATUS(backend.Read(name, 0, buf),
                         "timing loop; elapsed wall time is the result");
  }
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main() {
  storage::SyntheticImageNetSpec spec;
  spec.num_train = 500;
  spec.num_validation = 5;
  spec.mean_file_size = 24 * 1024;
  const auto dataset = storage::MakeSyntheticImageNet(spec);

  storage::SyntheticBackendOptions bo;
  bo.profile = storage::DeviceProfile::NvmeP4600();
  bo.time_scale = 0.05;
  auto device = std::make_shared<storage::SyntheticBackend>(bo, dataset);

  storage::EpochShuffler shuffler(dataset.train.Names(), 3);
  const auto order = shuffler.OrderFor(0);

  // 1. Baseline: per-file random reads from the device.
  const double loose = ConsumeEpoch(*device, order);
  std::printf("loose files, serial reads:        %.2f s\n", loose);

  // 2. Pack into shards on the same device.
  auto index =
      storage::PackCatalog(dataset.train, *device, "packed/", 4 << 20);
  if (!index.ok()) {
    std::fprintf(stderr, "packing failed: %s\n",
                 index.status().ToString().c_str());
    return 1;
  }
  std::printf("packed %zu files into %zu shards\n", index->NumRecords(),
              index->shards().size());
  auto sharded = std::make_shared<storage::ShardedBackend>(device, *index);

  // Sequential ingest: stream whole shards (this is where the format
  // wins — large streaming reads instead of per-file random ones).
  const auto t_seq = std::chrono::steady_clock::now();
  std::size_t streamed = 0;
  for (const auto& shard : index->shards()) {
    auto records = storage::ReadShard(*device, shard);
    if (!records.ok()) return 1;
    streamed += records->size();
  }
  const double packed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t_seq)
          .count();
  std::printf("sharded, streaming ingest:        %.2f s (%zu records)\n",
              packed, streamed);

  // 3. PRISMA on top of the shards: producers stream, consumer hits RAM.
  dataplane::PrefetchOptions po;
  po.initial_producers = 4;
  po.max_producers = 4;
  po.buffer_capacity = 64;
  dataplane::PrefetchObject prefetch(sharded, po, SteadyClock::Shared());
  if (!prefetch.Start().ok()) return 1;
  PRISMA_IGNORE_STATUS(prefetch.BeginEpoch(0, order),
                       "prefetch hint only");
  const auto t0 = std::chrono::steady_clock::now();
  for (const auto& name : order) {
    std::vector<std::byte> buf(*dataset.train.SizeOf(name));
    PRISMA_IGNORE_STATUS(prefetch.Read(name, 0, buf),
                         "timing loop; elapsed wall time is the result");
  }
  const double prisma =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  prefetch.Stop();
  std::printf("sharded + PRISMA prefetch:        %.2f s\n", prisma);

  std::printf(
      "\nPRISMA over the shards (ShardedBackend keeps the original file\n"
      "namespace) hides loading behind the consumer: %.0f%% faster than\n"
      "loose serial reads. At this toy scale the streaming-ingest row is\n"
      "CPU-bound on CRC verification rather than on the modeled device —\n"
      "bench/ablation_record_format quantifies the real at-scale effect\n"
      "(a single shard stream matches ~30 random-read threads).\n",
      100.0 * (1.0 - prisma / loose));
  (void)packed;
  return 0;
}
