// Multi-tenant coordination demo (paper §II / §VII): two training jobs
// share one storage backend. A single logically-centralized controller
// holds a global producer budget and splits it between the stages by
// demand (max-min fair shares) — something neither job could do with
// only its own framework-intrinsic optimizer.
#include <cstdio>
#include <thread>

#include "controlplane/controller.hpp"
#include "dataplane/prefetch_object.hpp"
#include "storage/shuffler.hpp"
#include "storage/synthetic_backend.hpp"

using namespace prisma;

namespace {

std::shared_ptr<dataplane::Stage> MakeJob(
    const std::string& id,
    const std::shared_ptr<storage::SyntheticBackend>& backend) {
  dataplane::PrefetchOptions po;
  po.initial_producers = 1;
  po.max_producers = 16;
  po.buffer_capacity = 16;
  auto object = std::make_shared<dataplane::PrefetchObject>(
      backend, po, SteadyClock::Shared());
  auto stage = std::make_shared<dataplane::Stage>(
      dataplane::StageInfo{id, "tensorflow", 0}, object);
  (void)stage->Start();
  return stage;
}

void ConsumeEpoch(const std::shared_ptr<dataplane::Stage>& stage,
                  const std::vector<std::string>& order, Nanos pace) {
  for (const auto& name : order) {
    const auto size = stage->FileSize(name);
    std::vector<std::byte> buf(static_cast<std::size_t>(size.value_or(0)));
    PRISMA_IGNORE_STATUS(stage->Read(name, 0, buf),
                         "demo consumer; throughput is the observable");
    if (pace.count() > 0) std::this_thread::sleep_for(pace);
  }
}

}  // namespace

int main() {
  storage::SyntheticImageNetSpec spec;
  spec.num_train = 300;
  spec.num_validation = 5;
  spec.mean_file_size = 16 * 1024;
  const auto dataset = storage::MakeSyntheticImageNet(spec);

  storage::SyntheticBackendOptions bo;
  bo.profile = storage::DeviceProfile::NvmeP4600();
  bo.time_scale = 0.05;
  auto backend = std::make_shared<storage::SyntheticBackend>(bo, dataset);

  auto hungry = MakeJob("job-hungry", backend);   // consumes flat out
  auto relaxed = MakeJob("job-relaxed", backend); // compute-bound pace

  controlplane::ControllerOptions copts;
  copts.poll_interval = Millis{10};
  copts.global_producer_budget = 6;  // shared device sweet spot
  controlplane::Controller controller(
      "shared-controller", copts,
      [] {
        controlplane::AutotunerOptions ao;
        ao.max_producers = 16;
        ao.period_min_inserts = 40;
        ao.period_max_ticks = 8;
        return std::make_unique<controlplane::PrismaAutotunePolicy>(ao);
      },
      SteadyClock::Shared());
  PRISMA_IGNORE_STATUS(controller.Attach(hungry),
                       "demo setup; a failed attach shows up as no tuning");
  PRISMA_IGNORE_STATUS(controller.Attach(relaxed),
                       "demo setup; a failed attach shows up as no tuning");
  PRISMA_IGNORE_STATUS(controller.RunInBackground(),
                       "demo setup; a failed start shows up as no tuning");

  storage::EpochShuffler shuffler(dataset.train.Names(), 3);
  const auto order = shuffler.OrderFor(0);
  PRISMA_IGNORE_STATUS(hungry->BeginEpoch(0, order),
                       "prefetch hint only");
  PRISMA_IGNORE_STATUS(relaxed->BeginEpoch(0, order),
                       "prefetch hint only");

  std::printf("two jobs sharing one device, global budget = 6 producers\n");
  std::thread t1([&] { ConsumeEpoch(hungry, order, Nanos{0}); });
  std::thread t2([&] { ConsumeEpoch(relaxed, order, Micros{300}); });

  // Observe the controller's allocation while both jobs run.
  for (int tick = 0; tick < 12; ++tick) {
    std::this_thread::sleep_for(Millis{60});
    const auto s1 = hungry->CollectStats();
    const auto s2 = relaxed->CollectStats();
    std::printf(
        "  t+%3dms  hungry: t=%u consumed=%llu | relaxed: t=%u consumed=%llu "
        "| total t=%u (<=6)\n",
        (tick + 1) * 60, s1.producers,
        static_cast<unsigned long long>(s1.samples_consumed), s2.producers,
        static_cast<unsigned long long>(s2.samples_consumed),
        s1.producers + s2.producers);
  }
  t1.join();
  t2.join();
  controller.Stop();

  const auto s1 = hungry->CollectStats();
  const auto s2 = relaxed->CollectStats();
  std::printf(
      "final: hungry t=%u, relaxed t=%u — budget honored, shares follow "
      "demand\n",
      s1.producers, s2.producers);
  hungry->Stop();
  relaxed->Stop();
  return 0;
}
