// TensorFlow-style training loop with and without PRISMA — the live
// analogue of Fig. 2 on a laptop-scale synthetic dataset.
//
// The consumer code is identical in both runs (the paper's point): it
// reads each sample through TfPosixFileSystem::NewRandomAccessFile, then
// "trains" by sleeping a per-batch GPU time. The only difference is
// whether the filesystem was constructed with a PRISMA stage (the 10-LoC
// integration).
#include <chrono>
#include <cstdio>
#include <thread>

#include "controlplane/controller.hpp"
#include "dataplane/prefetch_object.hpp"
#include "frameworks/tf_adapter.hpp"
#include "storage/shuffler.hpp"
#include "storage/synthetic_backend.hpp"

using namespace prisma;

namespace {

struct EpochResult {
  double seconds = 0.0;
};

/// The "framework": reads one epoch in shuffle order, simulating a GPU
/// step per batch. Identical for vanilla and PRISMA runs.
EpochResult TrainOneEpoch(frameworks::TfPosixFileSystem& fs,
                          const std::vector<std::string>& order,
                          std::size_t batch_size, Nanos gpu_step) {
  const auto t0 = std::chrono::steady_clock::now();
  std::size_t in_batch = 0;
  for (const auto& name : order) {
    auto file = fs.NewRandomAccessFile(name);
    if (!file.ok()) continue;
    const auto size = fs.GetFileSize(name);
    std::vector<std::byte> buf(static_cast<std::size_t>(size.value_or(0)));
    PRISMA_IGNORE_STATUS((*file)->Read(0, buf),
                         "training-loop model; bytes are discarded");
    if (++in_batch == batch_size) {
      std::this_thread::sleep_for(gpu_step);  // the "GPU"
      in_batch = 0;
    }
  }
  if (in_batch > 0) std::this_thread::sleep_for(gpu_step);
  return {std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count()};
}

}  // namespace

int main() {
  constexpr std::size_t kBatch = 32;
  constexpr Nanos kGpuStep = Millis{2};  // LeNet-ish: I/O-bound
  constexpr std::uint64_t kEpochs = 2;

  storage::SyntheticImageNetSpec spec;
  spec.num_train = 600;
  spec.num_validation = 10;
  spec.mean_file_size = 24 * 1024;
  const auto dataset = storage::MakeSyntheticImageNet(spec);

  storage::SyntheticBackendOptions bo;
  bo.profile = storage::DeviceProfile::NvmeP4600();
  bo.time_scale = 0.05;
  auto backend = std::make_shared<storage::SyntheticBackend>(bo, dataset);

  storage::EpochShuffler shuffler(dataset.train.Names(), 7);

  // --- vanilla TF: single-threaded on-demand reads ---------------------------
  std::printf("TF baseline (vanilla PosixFileSystem):\n");
  frameworks::TfPosixFileSystem vanilla(backend);
  double vanilla_total = 0;
  for (std::uint64_t e = 0; e < kEpochs; ++e) {
    const auto r =
        TrainOneEpoch(vanilla, shuffler.OrderFor(e), kBatch, kGpuStep);
    std::printf("  epoch %llu: %.2f s\n",
                static_cast<unsigned long long>(e), r.seconds);
    vanilla_total += r.seconds;
  }

  // --- PRISMA-integrated TF ---------------------------------------------------
  std::printf("PRISMA (pread -> Prisma.read, auto-tuned):\n");
  dataplane::PrefetchOptions po;
  po.initial_producers = 1;
  po.max_producers = 8;
  po.buffer_capacity = 16;
  auto object = std::make_shared<dataplane::PrefetchObject>(
      backend, po, SteadyClock::Shared());
  auto stage = std::make_shared<dataplane::Stage>(
      dataplane::StageInfo{"tf-job", "tensorflow", 0}, object);
  (void)stage->Start();

  controlplane::ControllerOptions copts;
  copts.poll_interval = Millis{10};
  controlplane::Controller controller(
      "ctrl", copts,
      [] {
        controlplane::AutotunerOptions ao;
        ao.max_producers = 8;
        ao.period_min_inserts = 50;
        ao.period_max_ticks = 8;
        return std::make_unique<controlplane::PrismaAutotunePolicy>(ao);
      },
      SteadyClock::Shared());
  PRISMA_IGNORE_STATUS(controller.Attach(stage),
                       "demo setup; a failed attach shows up as no tuning");
  PRISMA_IGNORE_STATUS(controller.RunInBackground(),
                       "demo setup; a failed start shows up as no tuning");

  frameworks::TfPosixFileSystem prisma_fs(backend, stage);
  double prisma_total = 0;
  for (std::uint64_t e = 0; e < kEpochs; ++e) {
    const auto order = shuffler.OrderFor(e);
    PRISMA_IGNORE_STATUS(stage->BeginEpoch(e, order),
                         "prefetch hint only");
    const auto r = TrainOneEpoch(prisma_fs, order, kBatch, kGpuStep);
    const auto stats = stage->CollectStats();
    std::printf("  epoch %llu: %.2f s (t=%u, N=%zu)\n",
                static_cast<unsigned long long>(e), r.seconds,
                stats.producers, stats.buffer_capacity);
    prisma_total += r.seconds;
  }
  controller.Stop();
  stage->Stop();

  std::printf("\ntotal: baseline %.2f s, PRISMA %.2f s -> %.0f%% reduction\n",
              vanilla_total, prisma_total,
              100.0 * (1.0 - prisma_total / vanilla_total));
  return 0;
}
