// Unmodified "application" for the LD_PRELOAD demo: reads files with
// plain POSIX calls and prints their sizes. It has no idea PRISMA
// exists — the shim routes its I/O when LD_PRELOAD is set.
//
// Usage: ld_preload_reader <path> [<path> ...]
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <path>...\n", argv[0]);
    return 2;
  }
  for (int i = 1; i < argc; ++i) {
    const int fd = ::open(argv[i], O_RDONLY);
    if (fd < 0) {
      std::fprintf(stderr, "open(%s): %s\n", argv[i], std::strerror(errno));
      return 1;
    }
    struct stat st{};
    if (::fstat(fd, &st) != 0) {
      std::fprintf(stderr, "fstat(%s) failed\n", argv[i]);
      ::close(fd);
      return 1;
    }
    std::size_t total = 0;
    char buf[8192];
    for (;;) {
      const ssize_t n = ::read(fd, buf, sizeof(buf));
      if (n < 0) {
        std::fprintf(stderr, "read(%s) failed\n", argv[i]);
        ::close(fd);
        return 1;
      }
      if (n == 0) break;
      total += static_cast<std::size_t>(n);
    }
    ::close(fd);
    std::printf("%s: stat=%lld read=%zu bytes\n", argv[i],
                static_cast<long long>(st.st_size), total);
    if (static_cast<long long>(total) != static_cast<long long>(st.st_size)) {
      return 1;
    }
  }
  return 0;
}
