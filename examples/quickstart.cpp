// Quickstart: the smallest complete PRISMA deployment.
//
//   1. a storage backend (here: synthetic ImageNet files with modeled
//      NVMe service times — swap in PosixBackend for real files),
//   2. a data-plane stage hosting the parallel-prefetch optimization
//      object,
//   3. a control-plane controller running the feedback auto-tuner,
//   4. a consumer loop standing in for the DL framework.
//
// Build & run:  ./examples/quickstart
#include <cstdio>

#include "controlplane/controller.hpp"
#include "dataplane/prefetch_object.hpp"
#include "storage/shuffler.hpp"
#include "storage/synthetic_backend.hpp"

using namespace prisma;

int main() {
  // --- 1. backend storage ---------------------------------------------------
  storage::SyntheticImageNetSpec spec;
  spec.num_train = 400;           // scaled-down ImageNet
  spec.num_validation = 20;
  spec.mean_file_size = 32 * 1024;
  const auto dataset = storage::MakeSyntheticImageNet(spec);

  storage::SyntheticBackendOptions backend_opts;
  backend_opts.profile = storage::DeviceProfile::NvmeP4600();
  backend_opts.time_scale = 0.02;  // 50x faster than real time, same shape
  auto backend =
      std::make_shared<storage::SyntheticBackend>(backend_opts, dataset);

  // --- 2. data plane: stage + prefetch optimization object -------------------
  dataplane::PrefetchOptions prefetch_opts;
  prefetch_opts.initial_producers = 1;   // the auto-tuner takes it from here
  prefetch_opts.max_producers = 8;
  prefetch_opts.buffer_capacity = 16;
  auto object = std::make_shared<dataplane::PrefetchObject>(
      backend, prefetch_opts, SteadyClock::Shared());
  auto stage = std::make_shared<dataplane::Stage>(
      dataplane::StageInfo{"quickstart-job", "demo", 0}, object);
  if (!stage->Start().ok()) {
    std::fprintf(stderr, "failed to start stage\n");
    return 1;
  }

  // --- 3. control plane ------------------------------------------------------
  controlplane::ControllerOptions ctrl_opts;
  ctrl_opts.poll_interval = Millis{10};
  controlplane::Controller controller(
      "quickstart-controller", ctrl_opts,
      [] {
        controlplane::AutotunerOptions tuner;
        tuner.max_producers = 8;
        tuner.period_min_inserts = 50;
        tuner.period_max_ticks = 8;
        return std::make_unique<controlplane::PrismaAutotunePolicy>(tuner);
      },
      SteadyClock::Shared());
  PRISMA_IGNORE_STATUS(controller.Attach(stage),
                       "demo setup; a failed attach shows up as no tuning");
  PRISMA_IGNORE_STATUS(controller.RunInBackground(),
                       "demo setup; a failed start shows up as no tuning");

  // --- 4. "framework" consumer loop ------------------------------------------
  storage::EpochShuffler shuffler(dataset.train.Names(), /*seed=*/42);
  for (std::uint64_t epoch = 0; epoch < 3; ++epoch) {
    const auto order = shuffler.OrderFor(epoch);
    PRISMA_IGNORE_STATUS(stage->BeginEpoch(epoch, order),
                         "the prefetch hint; reads below do the work");

    const auto t0 = std::chrono::steady_clock::now();
    std::uint64_t bytes = 0;
    for (const auto& name : order) {
      const auto size = stage->FileSize(name);
      std::vector<std::byte> sample(static_cast<std::size_t>(
          size.ok() ? *size : 0));
      const auto n = stage->Read(name, 0, sample);
      if (!n.ok()) {
        std::fprintf(stderr, "read %s failed: %s\n", name.c_str(),
                     n.status().ToString().c_str());
        return 1;
      }
      bytes += *n;
    }
    const double secs = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();

    const auto stats = stage->CollectStats();
    std::printf(
        "epoch %llu: %zu samples (%s) in %.2f s | auto-tuned t=%u N=%zu | "
        "buffer hits %.0f%%\n",
        static_cast<unsigned long long>(epoch), order.size(),
        FormatBytes(bytes).c_str(), secs, stats.producers,
        stats.buffer_capacity,
        100.0 * static_cast<double>(stats.consumer_hits) /
            static_cast<double>(stats.consumer_hits + stats.consumer_waits));
  }

  // Observability: the controller exports per-stage gauges.
  MetricsRegistry registry;
  controller.ExportMetrics(registry);
  std::printf("\ncontrol-plane metrics:\n%s", registry.DumpText().c_str());

  controller.Stop();
  stage->Stop();
  std::printf("quickstart done.\n");
  return 0;
}
