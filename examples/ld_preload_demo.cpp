// LD_PRELOAD interception demo — zero-modification integration.
//
// The parent starts a PRISMA stage + UDS server, then execs
// `ld_preload_reader` (a plain POSIX program that knows nothing about
// PRISMA) with LD_PRELOAD=libprisma_shim.so. Every open/read/fstat the
// child issues under the virtual prefix is transparently served from
// PRISMA's prefetch buffer.
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <string>
#include <vector>

#include "dataplane/prefetch_object.hpp"
#include "ipc/uds_server.hpp"
#include "storage/synthetic_backend.hpp"

using namespace prisma;

int main() {
  storage::SyntheticImageNetSpec spec;
  spec.num_train = 30;
  spec.num_validation = 2;
  spec.mean_file_size = 16 * 1024;
  const auto dataset = storage::MakeSyntheticImageNet(spec);

  storage::SyntheticBackendOptions bo;
  bo.profile = storage::DeviceProfile::Instant();
  bo.time_scale = 0.0;
  auto backend = std::make_shared<storage::SyntheticBackend>(bo, dataset);

  dataplane::PrefetchOptions po;
  po.initial_producers = 2;
  po.buffer_capacity = 32;
  auto object = std::make_shared<dataplane::PrefetchObject>(
      backend, po, SteadyClock::Shared());
  auto stage = std::make_shared<dataplane::Stage>(
      dataplane::StageInfo{"shim-job", "any", 0}, object);
  if (!stage->Start().ok()) return 1;

  const std::string socket_path =
      "/tmp/prisma_shim_demo_" + std::to_string(::getpid()) + ".sock";
  ipc::UdsServer server(socket_path, stage);
  if (!server.Start().ok()) return 1;

  // Announce a few files so they are prefetched before the child runs.
  std::vector<std::string> names;
  for (std::size_t i = 0; i < 8; ++i) names.push_back(dataset.train.At(i).name);
  PRISMA_IGNORE_STATUS(stage->BeginEpoch(0, names),
                       "prefetch hint; the child's reads are the demo");

  const std::string prefix = "/prisma-virtual";
  std::printf("server on %s; child reads %zu virtual files under %s\n",
              socket_path.c_str(), names.size(), prefix.c_str());

  const pid_t pid = ::fork();
  if (pid == 0) {
    ::setenv("LD_PRELOAD", PRISMA_SHIM_LIB_PATH, 1);
    ::setenv("PRISMA_SHIM_SOCKET", socket_path.c_str(), 1);
    ::setenv("PRISMA_SHIM_PREFIX", prefix.c_str(), 1);
    std::vector<std::string> args{PRISMA_SHIM_READER_PATH};
    for (const auto& n : names) args.push_back(prefix + "/" + n);
    std::vector<char*> argv;
    for (auto& a : args) argv.push_back(a.data());
    argv.push_back(nullptr);
    ::execv(PRISMA_SHIM_READER_PATH, argv.data());
    ::_exit(127);
  }

  int status = 0;
  ::waitpid(pid, &status, 0);
  const int rc = WIFEXITED(status) ? WEXITSTATUS(status) : -1;

  const auto stats = stage->CollectStats();
  std::printf(
      "child exit=%d; stage served %llu buffered samples, %llu requests "
      "total through the server\n",
      rc, static_cast<unsigned long long>(stats.samples_consumed),
      static_cast<unsigned long long>(server.requests_served()));

  server.Stop();
  stage->Stop();
  return rc == 0 ? 0 : 1;
}
