// Stacked optimization pipeline, declared in config (DESIGN.md §12):
//
//   stage_pipeline = prefetch|tiering
//
// builds prefetch -> tiering -> NVMe without new plumbing, serves it
// over the UDS server, and runs a control-plane policy that steers BOTH
// layers through namespaced knobs: a PRISMA auto-tuner targeting the
// prefetch layer plus a migration-worker rule driven by the tiering
// layer's own stats section. The consumer reads through a UdsClient and
// prints the per-object stats it sees over the wire (stats payload v2).
//
// Usage: ./examples/stacked_pipeline [path/to/stacked_pipeline.cfg]
#include <unistd.h>

#include <cstdio>
#include <memory>
#include <string>

#include "common/config.hpp"
#include "controlplane/controller.hpp"
#include "dataplane/pipeline_builder.hpp"
#include "ipc/uds_client.hpp"
#include "ipc/uds_server.hpp"
#include "storage/shuffler.hpp"
#include "storage/synthetic_backend.hpp"

using namespace prisma;

namespace {

/// One policy, two layers: the stock auto-tuner drives the prefetch
/// layer (target_object scopes its knobs), while the tiering layer gets
/// a second migration worker whenever its promotion queue backs up —
/// read straight from that layer's stats section.
class StackedDemoPolicy final : public controlplane::Policy {
 public:
  StackedDemoPolicy() {
    controlplane::AutotunerOptions opts;
    opts.max_producers = 8;
    opts.period_min_inserts = 50;
    opts.period_max_ticks = 8;
    opts.target_object = "prefetch";
    tuner_ = std::make_unique<controlplane::PrismaAutotuner>(opts);
  }

  std::string_view Name() const override { return "stacked-demo"; }

  dataplane::StageKnobs Tick(
      const dataplane::StageStatsSnapshot& stats) override {
    dataplane::StageKnobs knobs = tuner_->Tick(stats);
    if (const auto* tiering = stats.FindObject("tiering")) {
      const double backlog = tiering->Get("pending_promotions", 0.0);
      PRISMA_IGNORE_STATUS(
          knobs.Set("tiering.migration_workers", backlog > 8.0 ? 2.0 : 1.0),
          "the path literal is well-formed; Set only rejects malformed paths");
    }
    return knobs;
  }

 private:
  std::unique_ptr<controlplane::PrismaAutotuner> tuner_;
};

void PrintRemoteStats(const ipc::UdsClient::RemoteStats& stats) {
  std::printf("remote stats: consumed=%llu t=%llu N=%llu\n",
              static_cast<unsigned long long>(stats.samples_consumed),
              static_cast<unsigned long long>(stats.producers),
              static_cast<unsigned long long>(stats.buffer_capacity));
  for (const auto& section : stats.objects) {
    std::printf("  [%s]", section.object.c_str());
    for (const auto& [key, value] : section.gauges) {
      std::printf(" %s=%.0f", key.c_str(), value);
    }
    std::printf("\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  // --- configuration --------------------------------------------------------
  const std::string config_path =
      argc > 1 ? argv[1] : "configs/stacked_pipeline.cfg";
  Config config;
  if (auto loaded = Config::FromFile(config_path); loaded.ok()) {
    config = std::move(*loaded);
  } else {
    std::fprintf(stderr, "note: %s not readable (%s); using defaults\n",
                 config_path.c_str(), loaded.status().ToString().c_str());
  }
  const std::string spec = config.GetString("stage_pipeline", "prefetch|tiering");
  const auto epochs = static_cast<std::uint64_t>(config.GetInt("epochs", 2));
  const auto num_train =
      static_cast<std::size_t>(config.GetInt("train_files", 120));

  // --- backend storage ------------------------------------------------------
  storage::SyntheticImageNetSpec dataset_spec;
  dataset_spec.num_train = num_train;
  dataset_spec.num_validation = 5;
  dataset_spec.mean_file_size = 16 * 1024;
  const auto dataset = storage::MakeSyntheticImageNet(dataset_spec);

  storage::SyntheticBackendOptions backend_opts;
  backend_opts.profile = storage::DeviceProfile::NvmeP4600();
  backend_opts.time_scale = 0.02;
  auto backend =
      std::make_shared<storage::SyntheticBackend>(backend_opts, dataset);

  // --- data plane: the configured pipeline ----------------------------------
  dataplane::PipelineOptions pipeline_opts;
  pipeline_opts.prefetch.initial_producers = 2;
  pipeline_opts.prefetch.max_producers = 8;
  pipeline_opts.prefetch.buffer_capacity = 32;
  pipeline_opts.tiering.fast_tier_capacity = static_cast<std::uint64_t>(
      config.GetBytes("tiering.fast_tier_capacity", 64ull * 1024 * 1024));
  pipeline_opts.tiering.migration_workers = 1;
  // Durable mode (configs/durable_tiering.cfg): the fast tier is a
  // crash-consistent on-disk store and the stage reopens warm after a
  // restart instead of re-promoting its working set.
  pipeline_opts.tiering.durable = config.GetBool("tiering.durable", false);
  pipeline_opts.fast_tier_path = config.GetString("tiering.fast_tier_path", "");
  auto pipeline = dataplane::BuildStagePipeline(spec, backend, pipeline_opts,
                                                SteadyClock::Shared());
  if (!pipeline.ok()) {
    std::fprintf(stderr, "bad stage_pipeline '%s': %s\n", spec.c_str(),
                 pipeline.status().ToString().c_str());
    return 1;
  }
  auto stage = std::make_shared<dataplane::Stage>(
      dataplane::StageInfo{"stacked-job", "demo", 0}, std::move(*pipeline));
  if (!stage->Start().ok()) {
    std::fprintf(stderr, "failed to start stage\n");
    return 1;
  }
  std::printf("pipeline '%s': %zu layers\n", spec.c_str(),
              stage->pipeline().size());

  // --- serve it over the UDS server -----------------------------------------
  const std::string socket_path =
      "/tmp/prisma_stacked_demo_" + std::to_string(::getpid()) + ".sock";
  ipc::UdsServer server(socket_path, stage);
  if (!server.Start().ok()) {
    std::fprintf(stderr, "server start failed\n");
    return 1;
  }

  // --- control plane: one policy, both layers -------------------------------
  controlplane::ControllerOptions ctrl_opts;
  ctrl_opts.poll_interval = Millis{10};
  controlplane::Controller controller(
      "stacked-controller", ctrl_opts,
      [] { return std::make_unique<StackedDemoPolicy>(); },
      SteadyClock::Shared());
  PRISMA_IGNORE_STATUS(controller.Attach(stage),
                       "demo setup; a failed attach shows up as no tuning");
  PRISMA_IGNORE_STATUS(controller.RunInBackground(),
                       "demo setup; a failed start shows up as no tuning");

  // --- consumer: a framework worker reading through the socket --------------
  ipc::UdsClient client;
  if (!client.Connect(socket_path).ok()) {
    std::fprintf(stderr, "client connect failed\n");
    return 1;
  }
  storage::EpochShuffler shuffler(dataset.train.Names(), /*seed=*/7);
  for (std::uint64_t epoch = 0; epoch < epochs; ++epoch) {
    const auto order = shuffler.OrderFor(epoch);
    if (!client.BeginEpoch(epoch, order).ok()) {
      std::fprintf(stderr, "BeginEpoch failed\n");
      return 1;
    }
    std::uint64_t bytes = 0;
    for (const auto& name : order) {
      auto sample = client.ReadAll(name);
      if (!sample.ok()) {
        std::fprintf(stderr, "read %s failed: %s\n", name.c_str(),
                     sample.status().ToString().c_str());
        return 1;
      }
      bytes += sample->size();
    }
    std::printf("epoch %llu: %zu samples, %s\n",
                static_cast<unsigned long long>(epoch), order.size(),
                FormatBytes(bytes).c_str());
  }

  // Per-object stats as the consumer sees them over the wire. After the
  // first epoch the tiering layer has promoted the working set, so the
  // second epoch's reads count as fast_hits in its section.
  auto remote = client.Stats();
  if (!remote.ok()) {
    std::fprintf(stderr, "stats failed: %s\n",
                 remote.status().ToString().c_str());
    return 1;
  }
  PrintRemoteStats(*remote);

  // The same sections, exported as gauges by the controller.
  MetricsRegistry registry;
  controller.ExportMetrics(registry);
  std::printf("\ncontrol-plane metrics:\n%s", registry.DumpText().c_str());

  controller.Stop();
  server.Stop();
  stage->Stop();
  std::printf("stacked pipeline done.\n");
  return 0;
}
