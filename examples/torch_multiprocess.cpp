// PyTorch-style multi-process integration (paper §IV): the parent runs
// the PRISMA UDS server; forked worker *processes* — like DataLoader
// workers — each create a TorchWorkerClient and fetch their round-robin
// share of batches through the server. Real fork(2), real sockets.
//
// Usage: ./examples/torch_multiprocess [num_workers]   (default 4)
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "dataplane/prefetch_object.hpp"
#include "frameworks/torch_adapter.hpp"
#include "ipc/uds_server.hpp"
#include "storage/shuffler.hpp"
#include "storage/synthetic_backend.hpp"

using namespace prisma;

namespace {

/// Worker process body: connect, fetch every sample of batches b with
/// b % num_workers == worker_id, verify content, exit 0 on success.
int WorkerMain(const std::string& socket_path,
               const std::vector<std::string>& order, std::size_t batch,
               int worker_id, int num_workers) {
  frameworks::TorchWorkerClient client;
  if (!client.Connect(socket_path).ok()) {
    std::fprintf(stderr, "[worker %d] connect failed\n", worker_id);
    return 1;
  }
  const std::size_t steps = (order.size() + batch - 1) / batch;
  std::size_t fetched = 0;
  for (std::size_t b = worker_id; b < steps; b += num_workers) {
    const std::size_t start = b * batch;
    const std::size_t end = std::min(order.size(), start + batch);
    for (std::size_t i = start; i < end; ++i) {
      auto item = client.GetItem(order[i]);
      if (!item.ok()) {
        std::fprintf(stderr, "[worker %d] GetItem(%s) failed: %s\n",
                     worker_id, order[i].c_str(),
                     item.status().ToString().c_str());
        return 1;
      }
      const auto expected =
          storage::SyntheticContent::Generate(order[i], item->size());
      if (*item != expected) {
        std::fprintf(stderr, "[worker %d] content mismatch on %s\n",
                     worker_id, order[i].c_str());
        return 1;
      }
      ++fetched;
    }
  }
  std::printf("[worker %d] fetched %zu samples OK\n", worker_id, fetched);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const int num_workers = argc > 1 ? std::atoi(argv[1]) : 4;
  constexpr std::size_t kBatch = 16;

  storage::SyntheticImageNetSpec spec;
  spec.num_train = 200;
  spec.num_validation = 5;
  spec.mean_file_size = 16 * 1024;
  const auto dataset = storage::MakeSyntheticImageNet(spec);

  storage::SyntheticBackendOptions bo;
  bo.profile = storage::DeviceProfile::NvmeP4600();
  bo.time_scale = 0.02;
  auto backend = std::make_shared<storage::SyntheticBackend>(bo, dataset);

  dataplane::PrefetchOptions po;
  po.initial_producers = 4;
  po.max_producers = 8;
  po.buffer_capacity = 64;
  auto object = std::make_shared<dataplane::PrefetchObject>(
      backend, po, SteadyClock::Shared());
  auto stage = std::make_shared<dataplane::Stage>(
      dataplane::StageInfo{"torch-job", "pytorch", 0}, object);
  if (!stage->Start().ok()) return 1;

  const std::string socket_path =
      "/tmp/prisma_torch_demo_" + std::to_string(::getpid()) + ".sock";
  ipc::UdsServer server(socket_path, stage);
  if (!server.Start().ok()) {
    std::fprintf(stderr, "server start failed\n");
    return 1;
  }
  std::printf("PRISMA server on %s, %d workers, %zu samples\n",
              socket_path.c_str(), num_workers, dataset.train.NumFiles());

  // The main process (PyTorch's role): shuffle and announce the epoch.
  storage::EpochShuffler shuffler(dataset.train.Names(), 11);
  const auto order = shuffler.OrderFor(0);
  {
    frameworks::TorchWorkerClient main_client;
    if (!main_client.Connect(socket_path).ok()) return 1;
    if (!main_client.AnnounceEpoch(0, order).ok()) return 1;
  }

  // Fork the worker fleet (DataLoader-style).
  std::vector<pid_t> pids;
  for (int w = 0; w < num_workers; ++w) {
    const pid_t pid = ::fork();
    if (pid == 0) {
      ::_exit(WorkerMain(socket_path, order, kBatch, w, num_workers));
    }
    pids.push_back(pid);
  }

  int failures = 0;
  for (const pid_t pid : pids) {
    int status = 0;
    ::waitpid(pid, &status, 0);
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) ++failures;
  }

  const auto stats = stage->CollectStats();
  std::printf(
      "parent: %zu samples served (%llu via buffer, %llu pass-through), "
      "%d worker failures\n",
      order.size(),
      static_cast<unsigned long long>(stats.samples_consumed),
      static_cast<unsigned long long>(stats.passthrough_reads), failures);

  server.Stop();
  stage->Stop();
  return failures == 0 ? 0 : 1;
}
