file(REMOVE_RECURSE
  "../bench/micro_dataplane"
  "../bench/micro_dataplane.pdb"
  "CMakeFiles/micro_dataplane.dir/micro_dataplane.cpp.o"
  "CMakeFiles/micro_dataplane.dir/micro_dataplane.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_dataplane.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
