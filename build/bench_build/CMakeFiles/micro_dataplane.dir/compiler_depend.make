# Empty compiler generated dependencies file for micro_dataplane.
# This may be replaced when dependencies are built.
