file(REMOVE_RECURSE
  "../bench/fig3_thread_cdf"
  "../bench/fig3_thread_cdf.pdb"
  "CMakeFiles/fig3_thread_cdf.dir/fig3_thread_cdf.cpp.o"
  "CMakeFiles/fig3_thread_cdf.dir/fig3_thread_cdf.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_thread_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
