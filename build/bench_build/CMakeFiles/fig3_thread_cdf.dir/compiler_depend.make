# Empty compiler generated dependencies file for fig3_thread_cdf.
# This may be replaced when dependencies are built.
