# Empty dependencies file for ablation_record_format.
# This may be replaced when dependencies are built.
