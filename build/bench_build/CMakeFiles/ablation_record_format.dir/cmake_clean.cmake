file(REMOVE_RECURSE
  "../bench/ablation_record_format"
  "../bench/ablation_record_format.pdb"
  "CMakeFiles/ablation_record_format.dir/ablation_record_format.cpp.o"
  "CMakeFiles/ablation_record_format.dir/ablation_record_format.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_record_format.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
