# Empty compiler generated dependencies file for fig4_pytorch.
# This may be replaced when dependencies are built.
