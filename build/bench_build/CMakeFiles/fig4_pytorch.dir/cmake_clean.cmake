file(REMOVE_RECURSE
  "../bench/fig4_pytorch"
  "../bench/fig4_pytorch.pdb"
  "CMakeFiles/fig4_pytorch.dir/fig4_pytorch.cpp.o"
  "CMakeFiles/fig4_pytorch.dir/fig4_pytorch.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_pytorch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
