file(REMOVE_RECURSE
  "../bench/fig2_tensorflow"
  "../bench/fig2_tensorflow.pdb"
  "CMakeFiles/fig2_tensorflow.dir/fig2_tensorflow.cpp.o"
  "CMakeFiles/fig2_tensorflow.dir/fig2_tensorflow.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_tensorflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
