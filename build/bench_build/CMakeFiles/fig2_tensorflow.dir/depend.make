# Empty dependencies file for fig2_tensorflow.
# This may be replaced when dependencies are built.
