file(REMOVE_RECURSE
  "../bench/ablation_control"
  "../bench/ablation_control.pdb"
  "CMakeFiles/ablation_control.dir/ablation_control.cpp.o"
  "CMakeFiles/ablation_control.dir/ablation_control.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
