# Empty dependencies file for ablation_pagecache.
# This may be replaced when dependencies are built.
