file(REMOVE_RECURSE
  "../bench/ablation_pagecache"
  "../bench/ablation_pagecache.pdb"
  "CMakeFiles/ablation_pagecache.dir/ablation_pagecache.cpp.o"
  "CMakeFiles/ablation_pagecache.dir/ablation_pagecache.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_pagecache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
