# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/queue_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/synthetic_backend_test[1]_include.cmake")
include("/root/repo/build/tests/sample_buffer_test[1]_include.cmake")
include("/root/repo/build/tests/prefetch_object_test[1]_include.cmake")
include("/root/repo/build/tests/tiering_test[1]_include.cmake")
include("/root/repo/build/tests/autotuner_test[1]_include.cmake")
include("/root/repo/build/tests/controller_test[1]_include.cmake")
include("/root/repo/build/tests/ipc_test[1]_include.cmake")
include("/root/repo/build/tests/sim_engine_test[1]_include.cmake")
include("/root/repo/build/tests/pipelines_test[1]_include.cmake")
include("/root/repo/build/tests/frameworks_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/stacking_test[1]_include.cmake")
include("/root/repo/build/tests/rate_limiter_test[1]_include.cmake")
include("/root/repo/build/tests/metrics_test[1]_include.cmake")
include("/root/repo/build/tests/distributed_test[1]_include.cmake")
include("/root/repo/build/tests/record_format_test[1]_include.cmake")
include("/root/repo/build/tests/cli_config_test[1]_include.cmake")
include("/root/repo/build/tests/failure_injection_test[1]_include.cmake")
include("/root/repo/build/tests/buffer_stress_test[1]_include.cmake")
include("/root/repo/build/tests/pid_autotuner_test[1]_include.cmake")
include("/root/repo/build/tests/shim_test[1]_include.cmake")
