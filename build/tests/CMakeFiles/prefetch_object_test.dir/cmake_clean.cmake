file(REMOVE_RECURSE
  "CMakeFiles/prefetch_object_test.dir/prefetch_object_test.cpp.o"
  "CMakeFiles/prefetch_object_test.dir/prefetch_object_test.cpp.o.d"
  "prefetch_object_test"
  "prefetch_object_test.pdb"
  "prefetch_object_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prefetch_object_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
