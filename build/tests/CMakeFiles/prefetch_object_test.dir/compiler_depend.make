# Empty compiler generated dependencies file for prefetch_object_test.
# This may be replaced when dependencies are built.
