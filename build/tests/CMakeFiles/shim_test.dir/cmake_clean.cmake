file(REMOVE_RECURSE
  "CMakeFiles/shim_test.dir/shim_test.cpp.o"
  "CMakeFiles/shim_test.dir/shim_test.cpp.o.d"
  "shim_test"
  "shim_test.pdb"
  "shim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
