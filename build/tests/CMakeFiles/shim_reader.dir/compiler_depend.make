# Empty compiler generated dependencies file for shim_reader.
# This may be replaced when dependencies are built.
