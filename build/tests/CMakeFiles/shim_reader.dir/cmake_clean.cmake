file(REMOVE_RECURSE
  "CMakeFiles/shim_reader.dir/shim_reader.cpp.o"
  "CMakeFiles/shim_reader.dir/shim_reader.cpp.o.d"
  "shim_reader"
  "shim_reader.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shim_reader.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
