file(REMOVE_RECURSE
  "CMakeFiles/cli_config_test.dir/cli_config_test.cpp.o"
  "CMakeFiles/cli_config_test.dir/cli_config_test.cpp.o.d"
  "cli_config_test"
  "cli_config_test.pdb"
  "cli_config_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cli_config_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
