# Empty compiler generated dependencies file for cli_config_test.
# This may be replaced when dependencies are built.
