# Empty dependencies file for record_format_test.
# This may be replaced when dependencies are built.
