file(REMOVE_RECURSE
  "CMakeFiles/record_format_test.dir/record_format_test.cpp.o"
  "CMakeFiles/record_format_test.dir/record_format_test.cpp.o.d"
  "record_format_test"
  "record_format_test.pdb"
  "record_format_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/record_format_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
