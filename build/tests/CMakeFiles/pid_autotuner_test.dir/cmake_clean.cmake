file(REMOVE_RECURSE
  "CMakeFiles/pid_autotuner_test.dir/pid_autotuner_test.cpp.o"
  "CMakeFiles/pid_autotuner_test.dir/pid_autotuner_test.cpp.o.d"
  "pid_autotuner_test"
  "pid_autotuner_test.pdb"
  "pid_autotuner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pid_autotuner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
