# Empty dependencies file for pid_autotuner_test.
# This may be replaced when dependencies are built.
