file(REMOVE_RECURSE
  "CMakeFiles/buffer_stress_test.dir/buffer_stress_test.cpp.o"
  "CMakeFiles/buffer_stress_test.dir/buffer_stress_test.cpp.o.d"
  "buffer_stress_test"
  "buffer_stress_test.pdb"
  "buffer_stress_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/buffer_stress_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
