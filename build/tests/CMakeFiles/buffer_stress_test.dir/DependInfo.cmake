
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/buffer_stress_test.cpp" "tests/CMakeFiles/buffer_stress_test.dir/buffer_stress_test.cpp.o" "gcc" "tests/CMakeFiles/buffer_stress_test.dir/buffer_stress_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baselines/CMakeFiles/prisma_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/frameworks/CMakeFiles/prisma_frameworks.dir/DependInfo.cmake"
  "/root/repo/build/src/ipc/CMakeFiles/prisma_ipc.dir/DependInfo.cmake"
  "/root/repo/build/src/controlplane/CMakeFiles/prisma_controlplane.dir/DependInfo.cmake"
  "/root/repo/build/src/dataplane/CMakeFiles/prisma_dataplane.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/prisma_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/prisma_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/prisma_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
