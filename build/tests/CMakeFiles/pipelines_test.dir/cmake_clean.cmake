file(REMOVE_RECURSE
  "CMakeFiles/pipelines_test.dir/pipelines_test.cpp.o"
  "CMakeFiles/pipelines_test.dir/pipelines_test.cpp.o.d"
  "pipelines_test"
  "pipelines_test.pdb"
  "pipelines_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipelines_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
