# Empty compiler generated dependencies file for pipelines_test.
# This may be replaced when dependencies are built.
