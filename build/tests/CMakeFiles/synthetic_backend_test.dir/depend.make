# Empty dependencies file for synthetic_backend_test.
# This may be replaced when dependencies are built.
