file(REMOVE_RECURSE
  "CMakeFiles/sample_buffer_test.dir/sample_buffer_test.cpp.o"
  "CMakeFiles/sample_buffer_test.dir/sample_buffer_test.cpp.o.d"
  "sample_buffer_test"
  "sample_buffer_test.pdb"
  "sample_buffer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sample_buffer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
