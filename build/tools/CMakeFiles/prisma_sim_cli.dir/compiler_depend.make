# Empty compiler generated dependencies file for prisma_sim_cli.
# This may be replaced when dependencies are built.
