file(REMOVE_RECURSE
  "CMakeFiles/prisma_sim_cli.dir/prisma_sim.cpp.o"
  "CMakeFiles/prisma_sim_cli.dir/prisma_sim.cpp.o.d"
  "prisma-sim"
  "prisma-sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prisma_sim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
