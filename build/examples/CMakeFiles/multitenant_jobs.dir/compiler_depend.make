# Empty compiler generated dependencies file for multitenant_jobs.
# This may be replaced when dependencies are built.
