file(REMOVE_RECURSE
  "CMakeFiles/multitenant_jobs.dir/multitenant_jobs.cpp.o"
  "CMakeFiles/multitenant_jobs.dir/multitenant_jobs.cpp.o.d"
  "multitenant_jobs"
  "multitenant_jobs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multitenant_jobs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
