# Empty dependencies file for pack_and_train.
# This may be replaced when dependencies are built.
