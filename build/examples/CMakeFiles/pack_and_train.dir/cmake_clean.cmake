file(REMOVE_RECURSE
  "CMakeFiles/pack_and_train.dir/pack_and_train.cpp.o"
  "CMakeFiles/pack_and_train.dir/pack_and_train.cpp.o.d"
  "pack_and_train"
  "pack_and_train.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pack_and_train.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
