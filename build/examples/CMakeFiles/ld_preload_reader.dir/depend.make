# Empty dependencies file for ld_preload_reader.
# This may be replaced when dependencies are built.
