file(REMOVE_RECURSE
  "CMakeFiles/ld_preload_reader.dir/ld_preload_reader.cpp.o"
  "CMakeFiles/ld_preload_reader.dir/ld_preload_reader.cpp.o.d"
  "ld_preload_reader"
  "ld_preload_reader.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ld_preload_reader.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
