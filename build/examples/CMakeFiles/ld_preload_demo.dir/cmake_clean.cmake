file(REMOVE_RECURSE
  "CMakeFiles/ld_preload_demo.dir/ld_preload_demo.cpp.o"
  "CMakeFiles/ld_preload_demo.dir/ld_preload_demo.cpp.o.d"
  "ld_preload_demo"
  "ld_preload_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ld_preload_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
