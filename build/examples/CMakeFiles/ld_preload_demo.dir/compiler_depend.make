# Empty compiler generated dependencies file for ld_preload_demo.
# This may be replaced when dependencies are built.
