# Empty dependencies file for tf_style_training.
# This may be replaced when dependencies are built.
