file(REMOVE_RECURSE
  "CMakeFiles/tf_style_training.dir/tf_style_training.cpp.o"
  "CMakeFiles/tf_style_training.dir/tf_style_training.cpp.o.d"
  "tf_style_training"
  "tf_style_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tf_style_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
