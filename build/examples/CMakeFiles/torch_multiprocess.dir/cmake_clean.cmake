file(REMOVE_RECURSE
  "CMakeFiles/torch_multiprocess.dir/torch_multiprocess.cpp.o"
  "CMakeFiles/torch_multiprocess.dir/torch_multiprocess.cpp.o.d"
  "torch_multiprocess"
  "torch_multiprocess.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/torch_multiprocess.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
