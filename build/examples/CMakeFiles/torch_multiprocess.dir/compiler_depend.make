# Empty compiler generated dependencies file for torch_multiprocess.
# This may be replaced when dependencies are built.
