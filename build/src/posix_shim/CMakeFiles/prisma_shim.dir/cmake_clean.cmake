file(REMOVE_RECURSE
  "CMakeFiles/prisma_shim.dir/shim.cpp.o"
  "CMakeFiles/prisma_shim.dir/shim.cpp.o.d"
  "libprisma_shim.pdb"
  "libprisma_shim.so"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prisma_shim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
