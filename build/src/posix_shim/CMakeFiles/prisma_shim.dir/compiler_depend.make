# Empty compiler generated dependencies file for prisma_shim.
# This may be replaced when dependencies are built.
