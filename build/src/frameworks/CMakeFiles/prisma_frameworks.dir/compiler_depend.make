# Empty compiler generated dependencies file for prisma_frameworks.
# This may be replaced when dependencies are built.
