file(REMOVE_RECURSE
  "libprisma_frameworks.a"
)
