file(REMOVE_RECURSE
  "CMakeFiles/prisma_frameworks.dir/tf_adapter.cpp.o"
  "CMakeFiles/prisma_frameworks.dir/tf_adapter.cpp.o.d"
  "CMakeFiles/prisma_frameworks.dir/torch_adapter.cpp.o"
  "CMakeFiles/prisma_frameworks.dir/torch_adapter.cpp.o.d"
  "libprisma_frameworks.a"
  "libprisma_frameworks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prisma_frameworks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
