# Empty compiler generated dependencies file for prisma_sim.
# This may be replaced when dependencies are built.
