file(REMOVE_RECURSE
  "CMakeFiles/prisma_sim.dir/engine.cpp.o"
  "CMakeFiles/prisma_sim.dir/engine.cpp.o.d"
  "CMakeFiles/prisma_sim.dir/model_zoo.cpp.o"
  "CMakeFiles/prisma_sim.dir/model_zoo.cpp.o.d"
  "CMakeFiles/prisma_sim.dir/storage_actor.cpp.o"
  "CMakeFiles/prisma_sim.dir/storage_actor.cpp.o.d"
  "libprisma_sim.a"
  "libprisma_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prisma_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
