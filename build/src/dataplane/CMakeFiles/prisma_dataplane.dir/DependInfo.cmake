
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dataplane/prefetch_object.cpp" "src/dataplane/CMakeFiles/prisma_dataplane.dir/prefetch_object.cpp.o" "gcc" "src/dataplane/CMakeFiles/prisma_dataplane.dir/prefetch_object.cpp.o.d"
  "/root/repo/src/dataplane/sample_buffer.cpp" "src/dataplane/CMakeFiles/prisma_dataplane.dir/sample_buffer.cpp.o" "gcc" "src/dataplane/CMakeFiles/prisma_dataplane.dir/sample_buffer.cpp.o.d"
  "/root/repo/src/dataplane/stage.cpp" "src/dataplane/CMakeFiles/prisma_dataplane.dir/stage.cpp.o" "gcc" "src/dataplane/CMakeFiles/prisma_dataplane.dir/stage.cpp.o.d"
  "/root/repo/src/dataplane/stage_registry.cpp" "src/dataplane/CMakeFiles/prisma_dataplane.dir/stage_registry.cpp.o" "gcc" "src/dataplane/CMakeFiles/prisma_dataplane.dir/stage_registry.cpp.o.d"
  "/root/repo/src/dataplane/tiering_object.cpp" "src/dataplane/CMakeFiles/prisma_dataplane.dir/tiering_object.cpp.o" "gcc" "src/dataplane/CMakeFiles/prisma_dataplane.dir/tiering_object.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/prisma_common.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/prisma_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
