file(REMOVE_RECURSE
  "libprisma_dataplane.a"
)
