# Empty compiler generated dependencies file for prisma_dataplane.
# This may be replaced when dependencies are built.
