file(REMOVE_RECURSE
  "CMakeFiles/prisma_dataplane.dir/prefetch_object.cpp.o"
  "CMakeFiles/prisma_dataplane.dir/prefetch_object.cpp.o.d"
  "CMakeFiles/prisma_dataplane.dir/sample_buffer.cpp.o"
  "CMakeFiles/prisma_dataplane.dir/sample_buffer.cpp.o.d"
  "CMakeFiles/prisma_dataplane.dir/stage.cpp.o"
  "CMakeFiles/prisma_dataplane.dir/stage.cpp.o.d"
  "CMakeFiles/prisma_dataplane.dir/stage_registry.cpp.o"
  "CMakeFiles/prisma_dataplane.dir/stage_registry.cpp.o.d"
  "CMakeFiles/prisma_dataplane.dir/tiering_object.cpp.o"
  "CMakeFiles/prisma_dataplane.dir/tiering_object.cpp.o.d"
  "libprisma_dataplane.a"
  "libprisma_dataplane.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prisma_dataplane.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
