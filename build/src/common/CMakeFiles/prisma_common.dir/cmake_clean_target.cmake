file(REMOVE_RECURSE
  "libprisma_common.a"
)
