file(REMOVE_RECURSE
  "CMakeFiles/prisma_common.dir/clock.cpp.o"
  "CMakeFiles/prisma_common.dir/clock.cpp.o.d"
  "CMakeFiles/prisma_common.dir/config.cpp.o"
  "CMakeFiles/prisma_common.dir/config.cpp.o.d"
  "CMakeFiles/prisma_common.dir/crc32.cpp.o"
  "CMakeFiles/prisma_common.dir/crc32.cpp.o.d"
  "CMakeFiles/prisma_common.dir/histogram.cpp.o"
  "CMakeFiles/prisma_common.dir/histogram.cpp.o.d"
  "CMakeFiles/prisma_common.dir/logging.cpp.o"
  "CMakeFiles/prisma_common.dir/logging.cpp.o.d"
  "CMakeFiles/prisma_common.dir/metrics.cpp.o"
  "CMakeFiles/prisma_common.dir/metrics.cpp.o.d"
  "CMakeFiles/prisma_common.dir/stats.cpp.o"
  "CMakeFiles/prisma_common.dir/stats.cpp.o.d"
  "CMakeFiles/prisma_common.dir/status.cpp.o"
  "CMakeFiles/prisma_common.dir/status.cpp.o.d"
  "CMakeFiles/prisma_common.dir/thread_pool.cpp.o"
  "CMakeFiles/prisma_common.dir/thread_pool.cpp.o.d"
  "CMakeFiles/prisma_common.dir/units.cpp.o"
  "CMakeFiles/prisma_common.dir/units.cpp.o.d"
  "libprisma_common.a"
  "libprisma_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prisma_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
