
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/controlplane/autotuner.cpp" "src/controlplane/CMakeFiles/prisma_controlplane.dir/autotuner.cpp.o" "gcc" "src/controlplane/CMakeFiles/prisma_controlplane.dir/autotuner.cpp.o.d"
  "/root/repo/src/controlplane/controller.cpp" "src/controlplane/CMakeFiles/prisma_controlplane.dir/controller.cpp.o" "gcc" "src/controlplane/CMakeFiles/prisma_controlplane.dir/controller.cpp.o.d"
  "/root/repo/src/controlplane/pid_autotuner.cpp" "src/controlplane/CMakeFiles/prisma_controlplane.dir/pid_autotuner.cpp.o" "gcc" "src/controlplane/CMakeFiles/prisma_controlplane.dir/pid_autotuner.cpp.o.d"
  "/root/repo/src/controlplane/policy.cpp" "src/controlplane/CMakeFiles/prisma_controlplane.dir/policy.cpp.o" "gcc" "src/controlplane/CMakeFiles/prisma_controlplane.dir/policy.cpp.o.d"
  "/root/repo/src/controlplane/tf_autotuner.cpp" "src/controlplane/CMakeFiles/prisma_controlplane.dir/tf_autotuner.cpp.o" "gcc" "src/controlplane/CMakeFiles/prisma_controlplane.dir/tf_autotuner.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/prisma_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dataplane/CMakeFiles/prisma_dataplane.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/prisma_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
