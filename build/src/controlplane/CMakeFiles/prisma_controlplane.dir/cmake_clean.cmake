file(REMOVE_RECURSE
  "CMakeFiles/prisma_controlplane.dir/autotuner.cpp.o"
  "CMakeFiles/prisma_controlplane.dir/autotuner.cpp.o.d"
  "CMakeFiles/prisma_controlplane.dir/controller.cpp.o"
  "CMakeFiles/prisma_controlplane.dir/controller.cpp.o.d"
  "CMakeFiles/prisma_controlplane.dir/pid_autotuner.cpp.o"
  "CMakeFiles/prisma_controlplane.dir/pid_autotuner.cpp.o.d"
  "CMakeFiles/prisma_controlplane.dir/policy.cpp.o"
  "CMakeFiles/prisma_controlplane.dir/policy.cpp.o.d"
  "CMakeFiles/prisma_controlplane.dir/tf_autotuner.cpp.o"
  "CMakeFiles/prisma_controlplane.dir/tf_autotuner.cpp.o.d"
  "libprisma_controlplane.a"
  "libprisma_controlplane.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prisma_controlplane.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
