file(REMOVE_RECURSE
  "libprisma_controlplane.a"
)
