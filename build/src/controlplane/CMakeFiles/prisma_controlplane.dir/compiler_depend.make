# Empty compiler generated dependencies file for prisma_controlplane.
# This may be replaced when dependencies are built.
