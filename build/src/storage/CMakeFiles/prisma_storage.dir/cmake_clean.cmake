file(REMOVE_RECURSE
  "CMakeFiles/prisma_storage.dir/backend.cpp.o"
  "CMakeFiles/prisma_storage.dir/backend.cpp.o.d"
  "CMakeFiles/prisma_storage.dir/dataset.cpp.o"
  "CMakeFiles/prisma_storage.dir/dataset.cpp.o.d"
  "CMakeFiles/prisma_storage.dir/device_model.cpp.o"
  "CMakeFiles/prisma_storage.dir/device_model.cpp.o.d"
  "CMakeFiles/prisma_storage.dir/flaky_backend.cpp.o"
  "CMakeFiles/prisma_storage.dir/flaky_backend.cpp.o.d"
  "CMakeFiles/prisma_storage.dir/page_cache.cpp.o"
  "CMakeFiles/prisma_storage.dir/page_cache.cpp.o.d"
  "CMakeFiles/prisma_storage.dir/posix_backend.cpp.o"
  "CMakeFiles/prisma_storage.dir/posix_backend.cpp.o.d"
  "CMakeFiles/prisma_storage.dir/rate_limiter.cpp.o"
  "CMakeFiles/prisma_storage.dir/rate_limiter.cpp.o.d"
  "CMakeFiles/prisma_storage.dir/record_format.cpp.o"
  "CMakeFiles/prisma_storage.dir/record_format.cpp.o.d"
  "CMakeFiles/prisma_storage.dir/shuffler.cpp.o"
  "CMakeFiles/prisma_storage.dir/shuffler.cpp.o.d"
  "CMakeFiles/prisma_storage.dir/synthetic_backend.cpp.o"
  "CMakeFiles/prisma_storage.dir/synthetic_backend.cpp.o.d"
  "libprisma_storage.a"
  "libprisma_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prisma_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
