
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/backend.cpp" "src/storage/CMakeFiles/prisma_storage.dir/backend.cpp.o" "gcc" "src/storage/CMakeFiles/prisma_storage.dir/backend.cpp.o.d"
  "/root/repo/src/storage/dataset.cpp" "src/storage/CMakeFiles/prisma_storage.dir/dataset.cpp.o" "gcc" "src/storage/CMakeFiles/prisma_storage.dir/dataset.cpp.o.d"
  "/root/repo/src/storage/device_model.cpp" "src/storage/CMakeFiles/prisma_storage.dir/device_model.cpp.o" "gcc" "src/storage/CMakeFiles/prisma_storage.dir/device_model.cpp.o.d"
  "/root/repo/src/storage/flaky_backend.cpp" "src/storage/CMakeFiles/prisma_storage.dir/flaky_backend.cpp.o" "gcc" "src/storage/CMakeFiles/prisma_storage.dir/flaky_backend.cpp.o.d"
  "/root/repo/src/storage/page_cache.cpp" "src/storage/CMakeFiles/prisma_storage.dir/page_cache.cpp.o" "gcc" "src/storage/CMakeFiles/prisma_storage.dir/page_cache.cpp.o.d"
  "/root/repo/src/storage/posix_backend.cpp" "src/storage/CMakeFiles/prisma_storage.dir/posix_backend.cpp.o" "gcc" "src/storage/CMakeFiles/prisma_storage.dir/posix_backend.cpp.o.d"
  "/root/repo/src/storage/rate_limiter.cpp" "src/storage/CMakeFiles/prisma_storage.dir/rate_limiter.cpp.o" "gcc" "src/storage/CMakeFiles/prisma_storage.dir/rate_limiter.cpp.o.d"
  "/root/repo/src/storage/record_format.cpp" "src/storage/CMakeFiles/prisma_storage.dir/record_format.cpp.o" "gcc" "src/storage/CMakeFiles/prisma_storage.dir/record_format.cpp.o.d"
  "/root/repo/src/storage/shuffler.cpp" "src/storage/CMakeFiles/prisma_storage.dir/shuffler.cpp.o" "gcc" "src/storage/CMakeFiles/prisma_storage.dir/shuffler.cpp.o.d"
  "/root/repo/src/storage/synthetic_backend.cpp" "src/storage/CMakeFiles/prisma_storage.dir/synthetic_backend.cpp.o" "gcc" "src/storage/CMakeFiles/prisma_storage.dir/synthetic_backend.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/prisma_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
