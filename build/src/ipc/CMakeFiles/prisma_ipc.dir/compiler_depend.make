# Empty compiler generated dependencies file for prisma_ipc.
# This may be replaced when dependencies are built.
