
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ipc/uds_client.cpp" "src/ipc/CMakeFiles/prisma_ipc.dir/uds_client.cpp.o" "gcc" "src/ipc/CMakeFiles/prisma_ipc.dir/uds_client.cpp.o.d"
  "/root/repo/src/ipc/uds_server.cpp" "src/ipc/CMakeFiles/prisma_ipc.dir/uds_server.cpp.o" "gcc" "src/ipc/CMakeFiles/prisma_ipc.dir/uds_server.cpp.o.d"
  "/root/repo/src/ipc/wire.cpp" "src/ipc/CMakeFiles/prisma_ipc.dir/wire.cpp.o" "gcc" "src/ipc/CMakeFiles/prisma_ipc.dir/wire.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/prisma_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dataplane/CMakeFiles/prisma_dataplane.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/prisma_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
