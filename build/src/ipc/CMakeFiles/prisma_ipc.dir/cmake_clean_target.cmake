file(REMOVE_RECURSE
  "libprisma_ipc.a"
)
