file(REMOVE_RECURSE
  "CMakeFiles/prisma_ipc.dir/uds_client.cpp.o"
  "CMakeFiles/prisma_ipc.dir/uds_client.cpp.o.d"
  "CMakeFiles/prisma_ipc.dir/uds_server.cpp.o"
  "CMakeFiles/prisma_ipc.dir/uds_server.cpp.o.d"
  "CMakeFiles/prisma_ipc.dir/wire.cpp.o"
  "CMakeFiles/prisma_ipc.dir/wire.cpp.o.d"
  "libprisma_ipc.a"
  "libprisma_ipc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prisma_ipc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
