file(REMOVE_RECURSE
  "CMakeFiles/prisma_baselines.dir/cli_config.cpp.o"
  "CMakeFiles/prisma_baselines.dir/cli_config.cpp.o.d"
  "CMakeFiles/prisma_baselines.dir/distributed.cpp.o"
  "CMakeFiles/prisma_baselines.dir/distributed.cpp.o.d"
  "CMakeFiles/prisma_baselines.dir/experiment.cpp.o"
  "CMakeFiles/prisma_baselines.dir/experiment.cpp.o.d"
  "CMakeFiles/prisma_baselines.dir/tf_pipelines.cpp.o"
  "CMakeFiles/prisma_baselines.dir/tf_pipelines.cpp.o.d"
  "CMakeFiles/prisma_baselines.dir/torch_pipelines.cpp.o"
  "CMakeFiles/prisma_baselines.dir/torch_pipelines.cpp.o.d"
  "libprisma_baselines.a"
  "libprisma_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prisma_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
