
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/cli_config.cpp" "src/baselines/CMakeFiles/prisma_baselines.dir/cli_config.cpp.o" "gcc" "src/baselines/CMakeFiles/prisma_baselines.dir/cli_config.cpp.o.d"
  "/root/repo/src/baselines/distributed.cpp" "src/baselines/CMakeFiles/prisma_baselines.dir/distributed.cpp.o" "gcc" "src/baselines/CMakeFiles/prisma_baselines.dir/distributed.cpp.o.d"
  "/root/repo/src/baselines/experiment.cpp" "src/baselines/CMakeFiles/prisma_baselines.dir/experiment.cpp.o" "gcc" "src/baselines/CMakeFiles/prisma_baselines.dir/experiment.cpp.o.d"
  "/root/repo/src/baselines/tf_pipelines.cpp" "src/baselines/CMakeFiles/prisma_baselines.dir/tf_pipelines.cpp.o" "gcc" "src/baselines/CMakeFiles/prisma_baselines.dir/tf_pipelines.cpp.o.d"
  "/root/repo/src/baselines/torch_pipelines.cpp" "src/baselines/CMakeFiles/prisma_baselines.dir/torch_pipelines.cpp.o" "gcc" "src/baselines/CMakeFiles/prisma_baselines.dir/torch_pipelines.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/prisma_common.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/prisma_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/prisma_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/controlplane/CMakeFiles/prisma_controlplane.dir/DependInfo.cmake"
  "/root/repo/build/src/dataplane/CMakeFiles/prisma_dataplane.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
