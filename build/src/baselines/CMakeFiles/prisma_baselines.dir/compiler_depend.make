# Empty compiler generated dependencies file for prisma_baselines.
# This may be replaced when dependencies are built.
