file(REMOVE_RECURSE
  "libprisma_baselines.a"
)
